package faultinject

import "math/rand/v2"

// PartitionConfig parameterizes a seeded partition/heal schedule for a
// fleet of nodes exchanging frames in discrete rounds.
type PartitionConfig struct {
	// Nodes is the fleet size. Required.
	Nodes int
	// Rounds is the length of the schedule; rounds at or beyond it are
	// fully healed. Required.
	Rounds int
	// Episodes is the number of partition episodes scattered over the
	// schedule (default 2). Each episode picks a random bipartition of
	// the fleet and blocks traffic across the cut for a random span.
	Episodes int
	// MaxSpan is the maximum length of one episode in rounds (default
	// Rounds/4, minimum 1).
	MaxSpan int
	// AsymmetricProb is the probability that an episode blocks only
	// one direction across the cut — the half-open failure a broken
	// ARP entry or a one-way firewall rule produces. 0 makes every
	// episode symmetric; 1 every one asymmetric.
	AsymmetricProb float64
}

// PartitionSchedule is a deterministic partition/heal schedule: for
// every (round, from, to) triple it answers whether a frame is cut.
// The same seed always yields the same schedule, so a chaos test that
// fails once fails every time. Reusable by any round-driven exchange —
// the replica sync suite and chaos_test.go both drive it.
type PartitionSchedule struct {
	nodes  int
	rounds int
	// blocked[r][from*nodes+to] marks a cut link in round r.
	blocked [][]bool
	healed  int
}

// NewPartitionSchedule draws a schedule from cfg and seed. It panics
// on a non-positive node or round count — a schedule for nothing is a
// test bug, not a runtime condition.
func NewPartitionSchedule(cfg PartitionConfig, seed uint64) *PartitionSchedule {
	if cfg.Nodes <= 0 || cfg.Rounds <= 0 {
		panic("faultinject: partition schedule needs positive Nodes and Rounds")
	}
	episodes := cfg.Episodes
	if episodes == 0 {
		episodes = 2
	}
	maxSpan := cfg.MaxSpan
	if maxSpan <= 0 {
		maxSpan = cfg.Rounds / 4
	}
	if maxSpan < 1 {
		maxSpan = 1
	}
	s := &PartitionSchedule{nodes: cfg.Nodes, rounds: cfg.Rounds}
	s.blocked = make([][]bool, cfg.Rounds)
	for r := range s.blocked {
		s.blocked[r] = make([]bool, cfg.Nodes*cfg.Nodes)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	for e := 0; e < episodes; e++ {
		start := rng.IntN(cfg.Rounds)
		span := rng.IntN(maxSpan) + 1
		// A random bipartition; redraw a one-sided cut so every episode
		// actually severs something when Nodes > 1.
		side := make([]bool, cfg.Nodes)
		for {
			a, b := 0, 0
			for i := range side {
				side[i] = rng.Uint64()&1 == 1
				if side[i] {
					a++
				} else {
					b++
				}
			}
			if cfg.Nodes == 1 || (a > 0 && b > 0) {
				break
			}
		}
		oneWay := rng.Float64() < cfg.AsymmetricProb
		for r := start; r < start+span && r < cfg.Rounds; r++ {
			for from := 0; from < cfg.Nodes; from++ {
				for to := 0; to < cfg.Nodes; to++ {
					if side[from] == side[to] {
						continue
					}
					// Asymmetric episodes cut only A→B; symmetric both.
					if oneWay && !side[from] {
						continue
					}
					s.blocked[r][from*cfg.Nodes+to] = true
				}
			}
			if r+1 > s.healed {
				s.healed = r + 1
			}
		}
	}
	return s
}

// Blocked reports whether a frame from node `from` to node `to` is cut
// in the given round. Rounds beyond the schedule are fully healed.
func (s *PartitionSchedule) Blocked(round, from, to int) bool {
	if round < 0 || round >= s.rounds || from == to {
		return false
	}
	if from < 0 || from >= s.nodes || to < 0 || to >= s.nodes {
		return false
	}
	return s.blocked[round][from*s.nodes+to]
}

// HealedAfter returns the first round from which no link is ever cut
// again — where a convergence clock may start.
func (s *PartitionSchedule) HealedAfter() int { return s.healed }
