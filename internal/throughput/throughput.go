// Package throughput measures uplink and downlink bandwidth over sliding
// windows of simulated time. The paper notes that computing P_d "requires
// only the knowledge of current bandwidth throughput, which is an essential
// component in off-the-shelf network devices"; this package is that
// component.
//
// Meters are driven exclusively by packet timestamps, so replaying a trace
// produces identical measurements regardless of wall-clock speed.
package throughput

import (
	"errors"
	"strconv"
	"sync/atomic"
	"time"
)

// Meter measures the byte rate of one traffic direction over a sliding
// window of fixed-width buckets. Time should advance monotonically
// through Add calls, but the meter tolerates capture-clock regressions:
// a timestamp behind the current bucket is accounted to the current
// bucket rather than rewinding the window, so a backward NTP step can
// never un-expire history or corrupt the ring cursors.
type Meter struct {
	bucketWidth time.Duration
	buckets     []int64 // ring of per-bucket byte counts
	head        int     // ring index of the current bucket
	headStart   time.Duration
	started     bool
	// totalBytes is atomic so TotalBytes can serve a monitoring scrape
	// concurrently with the single writer that drives Add.
	totalBytes atomic.Int64 //p2p:atomic
}

// NewMeter builds a meter whose window is nBuckets buckets of bucketWidth
// each. A 5-bucket, 1-second meter reports the mean rate over the last
// five seconds.
func NewMeter(bucketWidth time.Duration, nBuckets int) (*Meter, error) {
	if bucketWidth <= 0 {
		return nil, errors.New("throughput: bucket width must be positive, got " + bucketWidth.String())
	}
	if nBuckets <= 0 {
		return nil, errors.New("throughput: bucket count must be positive, got " + strconv.Itoa(nBuckets))
	}
	return &Meter{
		bucketWidth: bucketWidth,
		buckets:     make([]int64, nBuckets),
	}, nil
}

// Add accounts n bytes observed at simulated time ts.
//
//p2p:hotpath
func (m *Meter) Add(ts time.Duration, n int) {
	m.advance(ts)
	m.buckets[m.head] += int64(n)
	m.totalBytes.Add(int64(n))
}

// Rate returns the mean throughput in bits per second over the window
// ending at simulated time ts. Buckets that have rotated out since the
// last Add contribute zero.
//
//p2p:hotpath
func (m *Meter) Rate(ts time.Duration) float64 {
	m.advance(ts)
	var sum int64
	for _, b := range m.buckets {
		sum += b
	}
	window := m.bucketWidth * time.Duration(len(m.buckets))
	return float64(sum*8) / window.Seconds()
}

// TotalBytes returns the total bytes accounted since construction. It
// is safe to call from any goroutine concurrently with Add.
//
//p2p:hotpath
func (m *Meter) TotalBytes() int64 { return m.totalBytes.Load() }

// Window returns the measurement window span.
func (m *Meter) Window() time.Duration {
	return m.bucketWidth * time.Duration(len(m.buckets))
}

// advance rotates the ring so that ts falls inside the current bucket,
// clearing buckets that fall out of the window.
//
//p2p:hotpath
func (m *Meter) advance(ts time.Duration) {
	if !m.started {
		m.started = true
		m.headStart = ts - ts%m.bucketWidth
		return
	}
	if ts < m.headStart {
		// Clock regression: keep accounting to the current bucket. The
		// window never rewinds, so the reported rate can only err toward
		// counting recent bytes as more recent than they were.
		return
	}
	if gap := ts - m.headStart; gap > m.bucketWidth*time.Duration(len(m.buckets)) {
		// The whole window has elapsed; skip ahead instead of rotating
		// bucket by bucket through a long idle period.
		for i := range m.buckets {
			m.buckets[i] = 0
		}
		m.head = 0
		m.headStart = ts - ts%m.bucketWidth
		return
	}
	for ts >= m.headStart+m.bucketWidth {
		m.head = (m.head + 1) % len(m.buckets)
		m.buckets[m.head] = 0
		m.headStart += m.bucketWidth
	}
}

// Pair bundles an uplink and a downlink meter, the two directions an edge
// router distinguishes.
type Pair struct {
	Up   *Meter
	Down *Meter
}

// NewPair builds identical meters for both directions.
func NewPair(bucketWidth time.Duration, nBuckets int) (*Pair, error) {
	up, err := NewMeter(bucketWidth, nBuckets)
	if err != nil {
		return nil, err
	}
	down, err := NewMeter(bucketWidth, nBuckets)
	if err != nil {
		return nil, err
	}
	return &Pair{Up: up, Down: down}, nil
}
