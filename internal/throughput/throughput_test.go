package throughput

import (
	"math"
	"testing"
	"time"
)

func TestNewMeterValidation(t *testing.T) {
	if _, err := NewMeter(0, 5); err == nil {
		t.Fatal("zero bucket width accepted")
	}
	if _, err := NewMeter(time.Second, 0); err == nil {
		t.Fatal("zero bucket count accepted")
	}
}

func TestRateSteadyTraffic(t *testing.T) {
	m, err := NewMeter(time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB per second for 10 seconds → 8 Mbit/s.
	for s := 0; s < 10; s++ {
		m.Add(time.Duration(s)*time.Second, 1_000_000)
	}
	got := m.Rate(9 * time.Second)
	if math.Abs(got-8e6) > 1e-6 {
		t.Fatalf("steady rate = %g, want 8e6", got)
	}
	if m.TotalBytes() != 10_000_000 {
		t.Fatalf("total bytes = %d", m.TotalBytes())
	}
}

func TestRateDecaysWhenIdle(t *testing.T) {
	m, err := NewMeter(time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(0, 5_000_000)
	if m.Rate(0) == 0 {
		t.Fatal("rate zero right after add")
	}
	// After the window passes with no traffic the rate must be zero.
	if got := m.Rate(10 * time.Second); got != 0 {
		t.Fatalf("rate after idle window = %g, want 0", got)
	}
}

func TestRatePartialWindow(t *testing.T) {
	m, err := NewMeter(time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(0, 1000)
	m.Add(time.Second, 1000)
	// Two KB over a 4-second window.
	want := float64(2000*8) / 4
	if got := m.Rate(time.Second); math.Abs(got-want) > 1e-9 {
		t.Fatalf("partial-window rate = %g, want %g", got, want)
	}
}

func TestLongGapSkipsAhead(t *testing.T) {
	m, err := NewMeter(time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(0, 999)
	// A gap far larger than the window must not loop bucket by bucket
	// and must fully clear old traffic.
	m.Add(1000*time.Hour, 100)
	want := float64(100*8) / 3
	if got := m.Rate(1000 * time.Hour); math.Abs(got-want) > 1e-9 {
		t.Fatalf("rate after long gap = %g, want %g", got, want)
	}
}

func TestWindow(t *testing.T) {
	m, err := NewMeter(500*time.Millisecond, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Window(); got != 3*time.Second {
		t.Fatalf("window = %v", got)
	}
}

func TestBurstThenQuietMatchesWindowAverage(t *testing.T) {
	m, err := NewMeter(time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	m.Add(10*time.Second, 5_000_000)
	// Two seconds later, the burst still counts over the 5 s window.
	want := float64(5_000_000*8) / 5
	if got := m.Rate(12 * time.Second); math.Abs(got-want) > 1e-9 {
		t.Fatalf("rate 2s after burst = %g, want %g", got, want)
	}
	// Six seconds later it has rolled out.
	if got := m.Rate(16 * time.Second); got != 0 {
		t.Fatalf("rate 6s after burst = %g, want 0", got)
	}
}

func TestNewPair(t *testing.T) {
	p, err := NewPair(time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	p.Up.Add(0, 100)
	p.Down.Add(0, 900)
	if p.Up.TotalBytes() != 100 || p.Down.TotalBytes() != 900 {
		t.Fatal("pair meters are not independent")
	}
}
