package pcap

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"p2pbound/internal/packet"
)

// TestRegenFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzReadPacket, mirroring the f.Add seeds so a cold
// checkout exercises the interesting capture shapes without the
// mutation engine. Run with
//
//	P2PBOUND_REGEN_CORPUS=1 go test -run TestRegenFuzzCorpus ./internal/pcap
//
// after changing the capture format, and commit the result.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("P2PBOUND_REGEN_CORPUS") == "" {
		t.Skip("set P2PBOUND_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	var buf bytes.Buffer
	seedPackets := []packet.Packet{
		{
			TS: 0,
			Pair: packet.SocketPair{
				Proto:   packet.TCP,
				SrcAddr: packet.AddrFrom4(140, 112, 1, 1), SrcPort: 40000,
				DstAddr: packet.AddrFrom4(8, 8, 8, 8), DstPort: 80,
			},
			Dir: packet.Outbound, Len: 60, Flags: packet.SYN,
			Payload: []byte("GET / HTTP/1.1\r\n\r\n"),
		},
		{
			TS: time.Second,
			Pair: packet.SocketPair{
				Proto:   packet.UDP,
				SrcAddr: packet.AddrFrom4(9, 9, 9, 9), SrcPort: 53,
				DstAddr: packet.AddrFrom4(140, 112, 1, 1), DstPort: 5353,
			},
			Dir: packet.Inbound, Len: 40,
			Payload: []byte{1, 2, 3},
		},
	}
	if err := WriteAll(&buf, seedPackets, 0, time.Unix(1_163_000_000, 0)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	badmagic := append([]byte(nil), valid...)
	badmagic[0] ^= 0xff
	writeSeedCorpus(t, filepath.Join("testdata", "fuzz", "FuzzReadPacket"), map[string][]byte{
		"seed-valid":     valid,
		"seed-truncated": valid[:30],
		"seed-badmagic":  badmagic,
		"seed-empty":     {},
	})
}

// writeSeedCorpus writes each entry in the `go test fuzz v1` format the
// fuzzing engine loads from testdata/fuzz/<FuzzName>/.
func writeSeedCorpus(t *testing.T, dir string, seeds map[string][]byte) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
