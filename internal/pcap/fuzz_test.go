package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"p2pbound/internal/packet"
)

// FuzzReadPacket feeds arbitrary bytes to the reader; it must never panic
// and must terminate — either with packets, an error, or EOF. Run the
// fuzzer with `go test -fuzz FuzzReadPacket ./internal/pcap`.
func FuzzReadPacket(f *testing.F) {
	// Seed with a valid two-packet capture and a few mutations.
	var buf bytes.Buffer
	seedPackets := []packet.Packet{
		{
			TS: 0,
			Pair: packet.SocketPair{
				Proto:   packet.TCP,
				SrcAddr: packet.AddrFrom4(140, 112, 1, 1), SrcPort: 40000,
				DstAddr: packet.AddrFrom4(8, 8, 8, 8), DstPort: 80,
			},
			Dir: packet.Outbound, Len: 60, Flags: packet.SYN,
			Payload: []byte("GET / HTTP/1.1\r\n\r\n"),
		},
		{
			TS: time.Second,
			Pair: packet.SocketPair{
				Proto:   packet.UDP,
				SrcAddr: packet.AddrFrom4(9, 9, 9, 9), SrcPort: 53,
				DstAddr: packet.AddrFrom4(140, 112, 1, 1), DstPort: 5353,
			},
			Dir: packet.Inbound, Len: 40,
			Payload: []byte{1, 2, 3},
		},
	}
	if err := WriteAll(&buf, seedPackets, 0, time.Unix(1_163_000_000, 0)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:30])
	truncated := append([]byte(nil), valid...)
	truncated[0] ^= 0xff
	f.Add(truncated)
	f.Add([]byte{})

	clientNet := packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, verify := range []bool{false, true} {
			r, err := NewReader(bytes.NewReader(data), clientNet)
			if err != nil {
				continue
			}
			r.VerifyChecksums = verify
			for i := 0; i < 10_000; i++ {
				pkt, err := r.ReadPacket()
				if errors.Is(err, io.EOF) {
					break
				}
				if err != nil {
					// Corrupt records may error; the reader must stay
					// usable for the next record or report EOF later.
					continue
				}
				if pkt.Len < 0 {
					t.Fatalf("negative packet length %d", pkt.Len)
				}
			}
		}
	})
}
