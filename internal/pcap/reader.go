package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"p2pbound/internal/packet"
)

// Reader streams packets out of a pcap file written by this package (or
// any libpcap-compatible Ethernet capture of IPv4 TCP/UDP traffic).
type Reader struct {
	r         io.Reader
	order     binary.ByteOrder
	snaplen   int
	clientNet packet.Network
	base      time.Time
	baseSet   bool
	// VerifyChecksums rejects packets whose IP or transport checksum is
	// wrong with ErrBadChecksum, as the paper's analyzer does. Frames
	// truncated by the snap length cannot be verified and are accepted.
	VerifyChecksums bool
	buf             []byte
	// rec is the record-header scratch buffer. A struct field rather
	// than a local so passing it to io.ReadFull (an interface call) does
	// not force a heap allocation per packet.
	rec [16]byte

	// lastTS is the monotonic high-water mark of emitted timestamps;
	// clockRegressions counts records whose capture time ran backwards.
	lastTS           time.Duration
	clockRegressions int64
}

// NewReader parses the global header. clientNet classifies each packet's
// direction. Packet TS values are offsets from the first packet's capture
// time.
func NewReader(r io.Reader, clientNet packet.Network) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read global header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magicLE:
		order = binary.LittleEndian
	default:
		if binary.BigEndian.Uint32(hdr[0:]) != magicLE {
			return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
		}
		order = binary.BigEndian
	}
	if lt := order.Uint32(hdr[20:]); lt != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{
		r:         r,
		order:     order,
		snaplen:   int(order.Uint32(hdr[16:])),
		clientNet: clientNet,
	}, nil
}

// ReadPacket returns the next packet, io.EOF at the end of the file, or
// ErrBadChecksum (wrapped) for corrupt packets when verification is on;
// callers may skip those and continue reading. Each call allocates the
// returned packet (and its payload); batch consumers should prefer
// ReadPacketInto, which reuses caller storage.
func (r *Reader) ReadPacket() (*packet.Packet, error) {
	pkt := new(packet.Packet)
	if err := r.ReadPacketInto(pkt); err != nil {
		return nil, err
	}
	return pkt, nil
}

// ReadPacketInto decodes the next packet into pkt, reusing pkt's
// payload backing array so a caller cycling one packet (or a fixed
// batch of them) reads the whole stream without per-packet allocations.
// The payload bytes are copied out of the reader's frame buffer, so
// they stay valid until the same packet value is read into again. An
// empty payload keeps a zero-length (possibly non-nil) slice.
//
// Errors are those of ReadPacket: io.EOF at end of stream, a wrapped
// ErrBadChecksum for corrupt packets under verification (callers may
// skip and continue), and decode sentinels (ErrFrameTooShort,
// ErrNotIPv4, ...) for malformed frames. On error pkt's fields are
// unspecified but its payload capacity is retained.
func (r *Reader) ReadPacketInto(pkt *packet.Packet) error {
	if _, err := io.ReadFull(r.r, r.rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := r.order.Uint32(r.rec[0:])
	usec := r.order.Uint32(r.rec[4:])
	inclLen := int(r.order.Uint32(r.rec[8:]))
	origLen := int(r.order.Uint32(r.rec[12:]))
	if inclLen < 0 || inclLen > r.snaplen+ethHeaderLen || inclLen > 1<<20 {
		return fmt.Errorf("pcap: implausible record length %d", inclLen)
	}
	if len(r.buf) < inclLen {
		r.buf = make([]byte, inclLen)
	}
	frame := r.buf[:inclLen]
	if _, err := io.ReadFull(r.r, frame); err != nil {
		return fmt.Errorf("pcap: read frame: %w", err)
	}

	ts := time.Unix(int64(sec), int64(usec)*1000)
	if !r.baseSet {
		r.base = ts
		r.baseSet = true
	}

	// DecodeFrame aliases the payload into r.buf; copy it into pkt's own
	// backing before the next read overwrites the frame buffer.
	keep := pkt.Payload[:0]
	if err := DecodeFrame(frame, origLen, r.VerifyChecksums, pkt); err != nil {
		pkt.Payload = keep
		return err
	}
	pkt.Payload = append(keep, pkt.Payload...)

	// Capture clocks regress in the wild (NTP steps, per-queue NIC
	// stamping). Surface the anomaly through ClockRegressions but emit a
	// clamped, non-decreasing timestamp so downstream state machines
	// never see time run backwards.
	rel := ts.Sub(r.base)
	if rel < r.lastTS {
		r.clockRegressions++
		rel = r.lastTS
	} else {
		r.lastTS = rel
	}
	pkt.TS = rel
	pkt.Dir = packet.Classify(pkt.Pair, r.clientNet)
	return nil
}

// ClockRegressions reports how many records so far carried a capture
// timestamp behind an earlier record's. Their emitted TS values were
// clamped to the preceding high-water mark.
func (r *Reader) ClockRegressions() int64 { return r.clockRegressions }

// Buffered reports how many bytes are immediately readable without
// blocking, when the underlying reader can tell (bufio.Reader and
// friends); -1 when it cannot. Batch consumers over live streams use
// this to hand back a partial batch instead of blocking on a half-full
// one while decoded packets sit undelivered.
func (r *Reader) Buffered() int {
	if br, ok := r.r.(interface{ Buffered() int }); ok {
		return br.Buffered()
	}
	return -1
}

func clonePayload(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// WriteAll writes a full packet slice to w.
func WriteAll(w io.Writer, packets []packet.Packet, snaplen int, base time.Time) error {
	pw, err := NewWriter(w, snaplen, base)
	if err != nil {
		return err
	}
	for i := range packets {
		if err := pw.WritePacket(&packets[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll reads every packet from rd, skipping checksum failures when
// verify is enabled.
func ReadAll(rd io.Reader, clientNet packet.Network, verify bool) ([]packet.Packet, error) {
	r, err := NewReader(rd, clientNet)
	if err != nil {
		return nil, err
	}
	r.VerifyChecksums = verify
	var out []packet.Packet
	var pkt packet.Packet
	for {
		err := r.ReadPacketInto(&pkt)
		switch {
		case err == nil:
			cp := pkt
			cp.Payload = clonePayload(pkt.Payload)
			out = append(out, cp)
		case errors.Is(err, io.EOF):
			return out, nil
		case errors.Is(err, ErrBadChecksum):
			continue
		default:
			return out, err
		}
	}
}
