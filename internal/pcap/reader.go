package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"p2pbound/internal/packet"
)

// Reader streams packets out of a pcap file written by this package (or
// any libpcap-compatible Ethernet capture of IPv4 TCP/UDP traffic).
type Reader struct {
	r         io.Reader
	order     binary.ByteOrder
	snaplen   int
	clientNet packet.Network
	base      time.Time
	baseSet   bool
	// VerifyChecksums rejects packets whose IP or transport checksum is
	// wrong with ErrBadChecksum, as the paper's analyzer does. Frames
	// truncated by the snap length cannot be verified and are accepted.
	VerifyChecksums bool
	buf             []byte

	// lastTS is the monotonic high-water mark of emitted timestamps;
	// clockRegressions counts records whose capture time ran backwards.
	lastTS           time.Duration
	clockRegressions int64
}

// NewReader parses the global header. clientNet classifies each packet's
// direction. Packet TS values are offsets from the first packet's capture
// time.
func NewReader(r io.Reader, clientNet packet.Network) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read global header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:]) {
	case magicLE:
		order = binary.LittleEndian
	default:
		if binary.BigEndian.Uint32(hdr[0:]) != magicLE {
			return nil, fmt.Errorf("pcap: bad magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
		}
		order = binary.BigEndian
	}
	if lt := order.Uint32(hdr[20:]); lt != linkEthernet {
		return nil, fmt.Errorf("pcap: unsupported link type %d", lt)
	}
	return &Reader{
		r:         r,
		order:     order,
		snaplen:   int(order.Uint32(hdr[16:])),
		clientNet: clientNet,
	}, nil
}

// ReadPacket returns the next packet, io.EOF at the end of the file, or
// ErrBadChecksum (wrapped) for corrupt packets when verification is on;
// callers may skip those and continue reading.
func (r *Reader) ReadPacket() (*packet.Packet, error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := r.order.Uint32(rec[0:])
	usec := r.order.Uint32(rec[4:])
	inclLen := int(r.order.Uint32(rec[8:]))
	origLen := int(r.order.Uint32(rec[12:]))
	if inclLen < 0 || inclLen > r.snaplen+ethHeaderLen || inclLen > 1<<20 {
		return nil, fmt.Errorf("pcap: implausible record length %d", inclLen)
	}
	if len(r.buf) < inclLen {
		r.buf = make([]byte, inclLen)
	}
	frame := r.buf[:inclLen]
	if _, err := io.ReadFull(r.r, frame); err != nil {
		return nil, fmt.Errorf("pcap: read frame: %w", err)
	}

	ts := time.Unix(int64(sec), int64(usec)*1000)
	if !r.baseSet {
		r.base = ts
		r.baseSet = true
	}

	pkt, err := r.decodeFrame(frame, origLen)
	if err != nil {
		return nil, err
	}
	// Capture clocks regress in the wild (NTP steps, per-queue NIC
	// stamping). Surface the anomaly through ClockRegressions but emit a
	// clamped, non-decreasing timestamp so downstream state machines
	// never see time run backwards.
	rel := ts.Sub(r.base)
	if rel < r.lastTS {
		r.clockRegressions++
		rel = r.lastTS
	} else {
		r.lastTS = rel
	}
	pkt.TS = rel
	pkt.Dir = packet.Classify(pkt.Pair, r.clientNet)
	return pkt, nil
}

// ClockRegressions reports how many records so far carried a capture
// timestamp behind an earlier record's. Their emitted TS values were
// clamped to the preceding high-water mark.
func (r *Reader) ClockRegressions() int64 { return r.clockRegressions }

// decodeFrame parses Ethernet+IPv4+L4 headers into a Packet.
func (r *Reader) decodeFrame(frame []byte, origLen int) (*packet.Packet, error) {
	if len(frame) < ethHeaderLen+ipv4HeaderLen {
		return nil, fmt.Errorf("pcap: frame too short: %d bytes", len(frame))
	}
	if frame[12] != 0x08 || frame[13] != 0x00 {
		return nil, fmt.Errorf("pcap: not IPv4 (ethertype %#x)", uint16(frame[12])<<8|uint16(frame[13]))
	}
	ip := frame[ethHeaderLen:]
	ihl := int(ip[0]&0x0f) * 4
	if ip[0]>>4 != 4 || ihl < ipv4HeaderLen || len(ip) < ihl {
		return nil, fmt.Errorf("pcap: bad IPv4 header")
	}
	if r.VerifyChecksums && checksum(ip[:ihl], 0) != 0 {
		return nil, fmt.Errorf("%w: IPv4 header", ErrBadChecksum)
	}

	pair := packet.SocketPair{
		Proto:   packet.Proto(ip[9]),
		SrcAddr: packet.AddrFrom4(ip[12], ip[13], ip[14], ip[15]),
		DstAddr: packet.AddrFrom4(ip[16], ip[17], ip[18], ip[19]),
	}
	l4 := ip[ihl:]
	pkt := &packet.Packet{Len: origLen - ethHeaderLen}

	switch pair.Proto {
	case packet.TCP:
		if len(l4) < tcpHeaderLen {
			return nil, fmt.Errorf("pcap: truncated TCP header")
		}
		pair.SrcPort = binary.BigEndian.Uint16(l4[0:])
		pair.DstPort = binary.BigEndian.Uint16(l4[2:])
		pkt.Flags = packet.TCPFlags(l4[13])
		dataOff := int(l4[12]>>4) * 4
		if dataOff < tcpHeaderLen || dataOff > len(l4) {
			return nil, fmt.Errorf("pcap: bad TCP data offset")
		}
		pkt.Payload = clonePayload(l4[dataOff:])
		if r.VerifyChecksums && !r.truncated(ip, ihl, len(l4)) {
			if checksum(l4, pseudoSum(pair, len(l4))) != 0 {
				return nil, fmt.Errorf("%w: TCP segment", ErrBadChecksum)
			}
		}
	case packet.UDP:
		if len(l4) < udpHeaderLen {
			return nil, fmt.Errorf("pcap: truncated UDP header")
		}
		pair.SrcPort = binary.BigEndian.Uint16(l4[0:])
		pair.DstPort = binary.BigEndian.Uint16(l4[2:])
		pkt.Payload = clonePayload(l4[udpHeaderLen:])
		if r.VerifyChecksums && !r.truncated(ip, ihl, len(l4)) {
			if checksum(l4, pseudoSum(pair, len(l4))) != 0 {
				return nil, fmt.Errorf("%w: UDP datagram", ErrBadChecksum)
			}
		}
	default:
		return nil, fmt.Errorf("pcap: unsupported protocol %d", pair.Proto)
	}
	pkt.Pair = pair
	return pkt, nil
}

// truncated reports whether the captured bytes cover less than the IP
// total length (snap-length truncation), in which case checksums cannot
// be verified.
func (r *Reader) truncated(ip []byte, ihl, l4Len int) bool {
	total := int(binary.BigEndian.Uint16(ip[2:]))
	return ihl+l4Len < total
}

func clonePayload(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// WriteAll writes a full packet slice to w.
func WriteAll(w io.Writer, packets []packet.Packet, snaplen int, base time.Time) error {
	pw, err := NewWriter(w, snaplen, base)
	if err != nil {
		return err
	}
	for i := range packets {
		if err := pw.WritePacket(&packets[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadAll reads every packet from rd, skipping checksum failures when
// verify is enabled.
func ReadAll(rd io.Reader, clientNet packet.Network, verify bool) ([]packet.Packet, error) {
	r, err := NewReader(rd, clientNet)
	if err != nil {
		return nil, err
	}
	r.VerifyChecksums = verify
	var out []packet.Packet
	for {
		pkt, err := r.ReadPacket()
		switch {
		case err == nil:
			out = append(out, *pkt)
		case errors.Is(err, io.EOF):
			return out, nil
		case errors.Is(err, ErrBadChecksum):
			continue
		default:
			return out, err
		}
	}
}
