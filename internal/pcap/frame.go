package pcap

import (
	"errors"

	"p2pbound/internal/packet"
)

// Zero-copy frame decoding shared by the streaming Reader and the batch
// ingestion tier (internal/ingest). DecodeFrame parses headers in place
// and aliases the payload into the caller's frame bytes, so the caller
// decides whether a copy ever happens. Errors are predeclared sentinels
// — the decode path allocates nothing, not even an error message.

// Frame decode errors. ErrBadChecksum (reader.go's sentinel) is reused
// for checksum failures so errors.Is works uniformly across the
// streaming and zero-copy paths.
var (
	// ErrFrameTooShort reports a captured frame shorter than the
	// Ethernet+IPv4 header floor.
	ErrFrameTooShort = errors.New("pcap: frame too short")
	// ErrNotIPv4 reports a non-IPv4 ethertype.
	ErrNotIPv4 = errors.New("pcap: not IPv4")
	// ErrBadIPv4Header reports a malformed IPv4 header (version, IHL, or
	// captured length).
	ErrBadIPv4Header = errors.New("pcap: bad IPv4 header")
	// ErrTruncatedL4 reports a transport header extending past the
	// captured bytes.
	ErrTruncatedL4 = errors.New("pcap: truncated transport header")
	// ErrBadDataOffset reports a TCP data offset outside the segment.
	ErrBadDataOffset = errors.New("pcap: bad TCP data offset")
	// ErrUnsupportedProto reports a transport protocol other than TCP or
	// UDP.
	ErrUnsupportedProto = errors.New("pcap: unsupported protocol")
)

// IsFrameError reports whether err is a per-frame decode failure — one
// of the sentinels above or ErrBadChecksum — after which the enclosing
// record stream is still well-framed and reading can continue. Framing
// and I/O errors (truncated record, implausible length) return false:
// nothing after them can be trusted.
func IsFrameError(err error) bool {
	return errors.Is(err, ErrFrameTooShort) ||
		errors.Is(err, ErrNotIPv4) ||
		errors.Is(err, ErrBadIPv4Header) ||
		errors.Is(err, ErrTruncatedL4) ||
		errors.Is(err, ErrBadDataOffset) ||
		errors.Is(err, ErrUnsupportedProto) ||
		errors.Is(err, ErrBadChecksum)
}

// DecodeFrame parses an Ethernet+IPv4+TCP/UDP frame into pkt without
// copying: pkt.Payload aliases frame's bytes (nil when the frame
// carries none), so it is only valid while frame is. origLen is the
// record's original wire length including the Ethernet header; pkt.Len
// receives the IP-layer share, origLen − 14. pkt.TS and pkt.Dir are
// left untouched — timestamping and direction classification belong to
// the source driving the decode.
//
// With verify set, IP and transport checksums are validated and a
// mismatch returns ErrBadChecksum; frames truncated by the snap length
// cannot be verified and are accepted, exactly as the streaming Reader
// does.
//
//p2p:hotpath
func DecodeFrame(frame []byte, origLen int, verify bool, pkt *packet.Packet) error {
	if len(frame) < ethHeaderLen+ipv4HeaderLen {
		return ErrFrameTooShort
	}
	if frame[12] != 0x08 || frame[13] != 0x00 {
		return ErrNotIPv4
	}
	ip := frame[ethHeaderLen:]
	ihl := int(ip[0]&0x0f) * 4
	if ip[0]>>4 != 4 || ihl < ipv4HeaderLen || len(ip) < ihl {
		return ErrBadIPv4Header
	}
	if verify && checksum(ip[:ihl], 0) != 0 {
		return ErrBadChecksum
	}

	pair := packet.SocketPair{
		Proto:   packet.Proto(ip[9]),
		SrcAddr: packet.AddrFrom4(ip[12], ip[13], ip[14], ip[15]),
		DstAddr: packet.AddrFrom4(ip[16], ip[17], ip[18], ip[19]),
	}
	l4 := ip[ihl:]
	var (
		payload []byte
		flags   packet.TCPFlags
	)

	switch pair.Proto {
	case packet.TCP:
		if len(l4) < tcpHeaderLen {
			return ErrTruncatedL4
		}
		pair.SrcPort = uint16(l4[0])<<8 | uint16(l4[1])
		pair.DstPort = uint16(l4[2])<<8 | uint16(l4[3])
		flags = packet.TCPFlags(l4[13])
		dataOff := int(l4[12]>>4) * 4
		if dataOff < tcpHeaderLen || dataOff > len(l4) {
			return ErrBadDataOffset
		}
		payload = l4[dataOff:]
		if verify && !snapTruncated(ip, ihl, len(l4)) {
			if checksum(l4, pseudoSum(pair, len(l4))) != 0 {
				return ErrBadChecksum
			}
		}
	case packet.UDP:
		if len(l4) < udpHeaderLen {
			return ErrTruncatedL4
		}
		pair.SrcPort = uint16(l4[0])<<8 | uint16(l4[1])
		pair.DstPort = uint16(l4[2])<<8 | uint16(l4[3])
		payload = l4[udpHeaderLen:]
		if verify && !snapTruncated(ip, ihl, len(l4)) {
			if checksum(l4, pseudoSum(pair, len(l4))) != 0 {
				return ErrBadChecksum
			}
		}
	default:
		return ErrUnsupportedProto
	}

	if len(payload) == 0 {
		payload = nil
	}
	pkt.Pair = pair
	pkt.Len = origLen - ethHeaderLen
	pkt.Flags = flags
	pkt.Payload = payload
	return nil
}

// snapTruncated reports whether the captured bytes cover less than the
// IP total length (snap-length truncation), in which case checksums
// cannot be verified.
//
//p2p:hotpath
func snapTruncated(ip []byte, ihl, l4Len int) bool {
	total := int(ip[2])<<8 | int(ip[3])
	return ihl+l4Len < total
}
