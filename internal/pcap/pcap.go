// Package pcap reads and writes packet traces in the tcpdump/libpcap file
// format the paper's capture pipeline uses (Section 3.1–3.2): full traces
// carry payloads, while header traces strip payloads and keep only the
// layer-2 to layer-4 headers, "stored using the same format as the tcpdump
// program".
//
// Packets are serialized as Ethernet + IPv4 + TCP/UDP with valid IP and
// transport checksums; the reader verifies both and can be asked to skip
// corrupt packets exactly as the paper's analyzer does.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"p2pbound/internal/packet"
)

// File-format constants. The exported subset is what the zero-copy
// walker in internal/ingest needs to parse the same format.
const (
	// MagicLE is the pcap magic number as read by a little-endian load;
	// MagicBE is the same bytes read from a big-endian file.
	MagicLE = 0xa1b2c3d4
	MagicBE = 0xd4c3b2a1
	// LinkEthernet is the only link type this package produces or
	// accepts.
	LinkEthernet = 1
	// EthHeaderLen is the Ethernet II header length, the fixed offset
	// between a record's captured length and its IP-layer bytes.
	EthHeaderLen = 14

	magicLE      = MagicLE
	versionMajor = 2
	versionMinor = 4
	linkEthernet = LinkEthernet

	ethHeaderLen  = EthHeaderLen
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	udpHeaderLen  = 8

	// DefaultSnaplen keeps layer 2–4 headers plus a short payload
	// prefix, enough for the Table 1 signatures.
	DefaultSnaplen = 256
)

// ErrBadChecksum reports a packet whose IP or transport checksum failed
// verification; the paper's analyzer does not consider such packets.
var ErrBadChecksum = errors.New("pcap: checksum mismatch")

// Writer streams packets into a pcap file.
type Writer struct {
	w       io.Writer
	snaplen int
	base    time.Time
	buf     []byte
	rec     [16]byte
}

// NewWriter writes the pcap global header and returns a Writer. snaplen
// ≤ 0 selects DefaultSnaplen. base is the absolute capture start time that
// packet TS offsets are added to.
func NewWriter(w io.Writer, snaplen int, base time.Time) (*Writer, error) {
	if snaplen <= 0 {
		snaplen = DefaultSnaplen
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], uint32(snaplen))
	binary.LittleEndian.PutUint32(hdr[20:], linkEthernet)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write global header: %w", err)
	}
	return &Writer{w: w, snaplen: snaplen, base: base}, nil
}

// WritePacket serializes one packet. Payload bytes beyond the snap length
// (and payload the packet never carried, e.g. stripped data segments) are
// reflected only in the record's original-length field — the header-trace
// behaviour of the paper's collection pipeline.
func (w *Writer) WritePacket(pkt *packet.Packet) error {
	frame := appendFrame(w.buf[:0], pkt)
	w.buf = frame[:0]

	origLen := ethHeaderLen + pkt.Len
	inclLen := len(frame)
	if inclLen > w.snaplen {
		inclLen = w.snaplen
	}
	if origLen < inclLen {
		origLen = inclLen
	}

	ts := w.base.Add(pkt.TS)
	binary.LittleEndian.PutUint32(w.rec[0:], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(w.rec[4:], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(w.rec[8:], uint32(inclLen))
	binary.LittleEndian.PutUint32(w.rec[12:], uint32(origLen))
	if _, err := w.w.Write(w.rec[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(frame[:inclLen]); err != nil {
		return fmt.Errorf("pcap: write frame: %w", err)
	}
	return nil
}

// appendFrame renders the Ethernet+IPv4+L4 frame for pkt. The IP total
// length reflects the packet's true wire length so header traces preserve
// byte counts; the serialized payload is whatever bytes the packet
// actually carries.
func appendFrame(dst []byte, pkt *packet.Packet) []byte {
	p := pkt.Pair

	// Ethernet: locally administered MACs derived from the addresses.
	dst = append(dst,
		0x02, byte(p.DstAddr>>24), byte(p.DstAddr>>16), byte(p.DstAddr>>8), byte(p.DstAddr), 0x01,
		0x02, byte(p.SrcAddr>>24), byte(p.SrcAddr>>16), byte(p.SrcAddr>>8), byte(p.SrcAddr), 0x01,
		0x08, 0x00, // EtherType IPv4
	)

	ipStart := len(dst)
	ipTotal := pkt.Len
	minTotal := ipv4HeaderLen + l4HeaderLen(p.Proto) + len(pkt.Payload)
	if ipTotal < minTotal {
		ipTotal = minTotal
	}
	dst = append(dst,
		0x45, 0x00, // version/IHL, DSCP
		byte(ipTotal>>8), byte(ipTotal),
		0x00, 0x00, 0x40, 0x00, // ID, flags: DF
		64, byte(p.Proto),
		0x00, 0x00, // checksum placeholder
		byte(p.SrcAddr>>24), byte(p.SrcAddr>>16), byte(p.SrcAddr>>8), byte(p.SrcAddr),
		byte(p.DstAddr>>24), byte(p.DstAddr>>16), byte(p.DstAddr>>8), byte(p.DstAddr),
	)
	ipSum := checksum(dst[ipStart:ipStart+ipv4HeaderLen], 0)
	binary.BigEndian.PutUint16(dst[ipStart+10:], ipSum)

	l4Start := len(dst)
	switch p.Proto {
	case packet.TCP:
		dst = append(dst,
			byte(p.SrcPort>>8), byte(p.SrcPort),
			byte(p.DstPort>>8), byte(p.DstPort),
			0, 0, 0, 0, // seq
			0, 0, 0, 0, // ack
			0x50, byte(pkt.Flags), // data offset, flags
			0xff, 0xff, // window
			0, 0, // checksum placeholder
			0, 0, // urgent
		)
	case packet.UDP:
		udpLen := udpHeaderLen + len(pkt.Payload)
		dst = append(dst,
			byte(p.SrcPort>>8), byte(p.SrcPort),
			byte(p.DstPort>>8), byte(p.DstPort),
			byte(udpLen>>8), byte(udpLen),
			0, 0, // checksum placeholder
		)
	}
	dst = append(dst, pkt.Payload...)

	// Transport checksum over the pseudo header + segment.
	seg := dst[l4Start:]
	pseudo := pseudoSum(p, len(seg))
	l4Sum := checksum(seg, pseudo)
	switch p.Proto {
	case packet.TCP:
		binary.BigEndian.PutUint16(dst[l4Start+16:], l4Sum)
	case packet.UDP:
		if l4Sum == 0 {
			l4Sum = 0xffff // UDP transmits an all-zero checksum as 0xffff
		}
		binary.BigEndian.PutUint16(dst[l4Start+6:], l4Sum)
	}
	return dst
}

// l4HeaderLen returns the transport header length for the protocol.
func l4HeaderLen(proto packet.Proto) int {
	if proto == packet.UDP {
		return udpHeaderLen
	}
	return tcpHeaderLen
}

// pseudoSum folds the IPv4 pseudo header into an initial checksum value.
//
//p2p:hotpath
func pseudoSum(p packet.SocketPair, segLen int) uint32 {
	var sum uint32
	sum += uint32(p.SrcAddr>>16) + uint32(p.SrcAddr&0xffff)
	sum += uint32(p.DstAddr>>16) + uint32(p.DstAddr&0xffff)
	sum += uint32(p.Proto)
	sum += uint32(segLen)
	return sum
}

// checksum computes the ones-complement Internet checksum of b seeded
// with init.
//
//p2p:hotpath
func checksum(b []byte, init uint32) uint16 {
	sum := init
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
