package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"p2pbound/internal/packet"
	"p2pbound/internal/trace"
)

var clientNet = packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)

var base = time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)

func tcpPacket(ts time.Duration, payload []byte) packet.Packet {
	pay := payload
	return packet.Packet{
		TS: ts,
		Pair: packet.SocketPair{
			Proto:   packet.TCP,
			SrcAddr: packet.AddrFrom4(140, 112, 7, 7), SrcPort: 40000,
			DstAddr: packet.AddrFrom4(8, 8, 8, 8), DstPort: 80,
		},
		Dir:     packet.Outbound,
		Len:     40 + len(pay),
		Flags:   packet.SYN | packet.ACK,
		Payload: pay,
	}
}

func udpPacket(ts time.Duration, payload []byte) packet.Packet {
	return packet.Packet{
		TS: ts,
		Pair: packet.SocketPair{
			Proto:   packet.UDP,
			SrcAddr: packet.AddrFrom4(9, 9, 9, 9), SrcPort: 53,
			DstAddr: packet.AddrFrom4(140, 112, 1, 1), DstPort: 5353,
		},
		Dir:     packet.Inbound,
		Len:     28 + len(payload),
		Payload: payload,
	}
}

func TestRoundTrip(t *testing.T) {
	give := []packet.Packet{
		tcpPacket(0, []byte("GET / HTTP/1.1\r\n\r\n")),
		udpPacket(time.Second, []byte{1, 2, 3, 4}),
		tcpPacket(2*time.Second+500*time.Millisecond, nil),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, give, 0, base); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf, clientNet, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(give) {
		t.Fatalf("read %d packets, want %d", len(got), len(give))
	}
	for i := range give {
		g, w := &got[i], &give[i]
		if g.TS != w.TS {
			t.Errorf("packet %d: TS = %v, want %v", i, g.TS, w.TS)
		}
		if g.Pair != w.Pair {
			t.Errorf("packet %d: pair = %v, want %v", i, g.Pair, w.Pair)
		}
		if g.Dir != w.Dir {
			t.Errorf("packet %d: dir = %v, want %v", i, g.Dir, w.Dir)
		}
		if g.Len != w.Len {
			t.Errorf("packet %d: len = %d, want %d", i, g.Len, w.Len)
		}
		if g.Flags != w.Flags && w.Pair.Proto == packet.TCP {
			t.Errorf("packet %d: flags = %v, want %v", i, g.Flags, w.Flags)
		}
		if string(g.Payload) != string(w.Payload) {
			t.Errorf("packet %d: payload mismatch", i)
		}
	}
}

// TestHeaderTraceKeepsLengths: stripped data packets (payload absent, Len
// large) keep their original wire length through the round trip — the
// paper's header-trace property.
func TestHeaderTraceKeepsLengths(t *testing.T) {
	give := tcpPacket(0, nil)
	give.Len = 1500 // a full data segment whose payload was stripped
	var buf bytes.Buffer
	if err := WriteAll(&buf, []packet.Packet{give}, 0, base); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf, clientNet, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Len != 1500 {
		t.Fatalf("round-tripped len = %+v, want 1500", got)
	}
	if len(got[0].Payload) != 0 {
		t.Fatal("stripped packet grew a payload")
	}
}

// TestSnaplenTruncation: payloads beyond the snap length are cut in the
// file but the original length survives.
func TestSnaplenTruncation(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 1000)
	give := tcpPacket(0, payload)
	var buf bytes.Buffer
	if err := WriteAll(&buf, []packet.Packet{give}, 128, base); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf, clientNet, true) // truncated → checksum skipped
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("packets = %d", len(got))
	}
	if got[0].Len != give.Len {
		t.Fatalf("orig len = %d, want %d", got[0].Len, give.Len)
	}
	if len(got[0].Payload) >= len(payload) {
		t.Fatal("payload not truncated by snaplen")
	}
}

// TestChecksumVerification: flipping a payload byte makes the reader
// reject the packet with ErrBadChecksum, and ReadAll skips it.
func TestChecksumVerification(t *testing.T) {
	give := []packet.Packet{
		tcpPacket(0, []byte("hello checksum")),
		udpPacket(time.Second, []byte("dns-ish")),
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, give, 0, base); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt one payload byte of the first packet (well past the
	// global header 24 + record header 16 + eth 14 + ip 20 + tcp 20).
	raw[24+16+14+20+20+3] ^= 0xff

	r, err := NewReader(bytes.NewReader(raw), clientNet)
	if err != nil {
		t.Fatal(err)
	}
	r.VerifyChecksums = true
	_, err = r.ReadPacket()
	if !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt packet error = %v, want ErrBadChecksum", err)
	}
	// The second packet is still readable.
	pkt, err := r.ReadPacket()
	if err != nil {
		t.Fatalf("second packet: %v", err)
	}
	if pkt.Pair.Proto != packet.UDP {
		t.Fatalf("second packet proto = %v", pkt.Pair.Proto)
	}

	// ReadAll silently skips the corrupt one.
	got, err := ReadAll(bytes.NewReader(raw), clientNet, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("ReadAll kept %d packets, want 1", len(got))
	}
}

func TestBigEndianFilesAccepted(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []packet.Packet{udpPacket(0, []byte{9})}, 0, base); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Byte-swap the global header and the record header into big endian.
	be := make([]byte, len(raw))
	copy(be, raw)
	binary.BigEndian.PutUint32(be[0:], binary.LittleEndian.Uint32(raw[0:]))
	binary.BigEndian.PutUint16(be[4:], binary.LittleEndian.Uint16(raw[4:]))
	binary.BigEndian.PutUint16(be[6:], binary.LittleEndian.Uint16(raw[6:]))
	binary.BigEndian.PutUint32(be[16:], binary.LittleEndian.Uint32(raw[16:]))
	binary.BigEndian.PutUint32(be[20:], binary.LittleEndian.Uint32(raw[20:]))
	for off := 24; off < len(raw); off += 16 {
		for f := 0; f < 4; f++ {
			binary.BigEndian.PutUint32(be[off+f*4:], binary.LittleEndian.Uint32(raw[off+f*4:]))
		}
		off += int(binary.LittleEndian.Uint32(raw[off+8:]))
	}
	got, err := ReadAll(bytes.NewReader(be), clientNet, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("big-endian file: %d packets", len(got))
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("short")), clientNet); err == nil {
		t.Fatal("short header accepted")
	}
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad), clientNet); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestEOFAfterLastPacket(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, []packet.Packet{udpPacket(0, []byte{1})}, 0, base); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, clientNet)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

// TestGeneratedTraceRoundTrip: an entire synthetic trace survives the
// pcap round trip with identical five tuples, directions and lengths —
// the paper's capture-then-replay pipeline.
func TestGeneratedTraceRoundTrip(t *testing.T) {
	tr, err := trace.Generate(trace.DefaultConfig(5*time.Second, 0.02, 3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAll(&buf, tr.Packets, 0, base); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf, tr.Config.ClientNet, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.Packets) {
		t.Fatalf("round trip lost packets: %d vs %d (checksum rejects?)", len(got), len(tr.Packets))
	}
	for i := range got {
		g, w := &got[i], &tr.Packets[i]
		if g.Pair != w.Pair || g.Dir != w.Dir || g.Len != w.Len {
			t.Fatalf("packet %d differs: %+v vs %+v", i, g, w)
		}
		// pcap stores microsecond timestamps, and the reader rebases
		// offsets on the first packet; inter-packet spacing must agree
		// to 1 µs.
		wantTS := w.TS - tr.Packets[0].TS
		if d := g.TS - wantTS; d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("packet %d: TS drift %v", i, d)
		}
	}
}
