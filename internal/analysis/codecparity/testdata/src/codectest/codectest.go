// Package codectest exercises the codecparity analyzer within one
// package: parity mismatches, coverage gaps, codecskip waivers, unkeyed
// composite literals, one-sided codecs, and malformed directives.
package codectest

func put32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// header is fully covered: every field is either serialized by both
// sides or waived with a reason.
//
//p2p:codec
type header struct {
	Seq   uint32
	Flags uint32
	Pad   uint32 //p2p:codecskip wire padding, never meaningful
	Skew  uint32
	Lost  uint32
}

//p2p:codec good encode
func encodeGood(dst []byte, h *header) []byte {
	dst = put32(dst, h.Seq)
	dst = put32(dst, h.Flags)
	dst = put32(dst, h.Skew)
	dst = put32(dst, h.Lost)
	return dst
}

//p2p:codec good decode
func decodeGood(b []byte) header {
	return header{
		Seq:   get32(b[0:]),
		Flags: get32(b[4:]),
		Skew:  get32(b[8:]),
		Lost:  get32(b[12:]),
	}
}

//p2p:codec
type record struct {
	A uint32
	B uint32
	C uint32
	D uint32
}

// encodeBad writes A and B; decodeBad reads A and C: B is enc-only, C
// is dec-only, D is covered by neither. All three diagnostics anchor at
// the codec's earliest function declaration.
//
//p2p:codec bad encode
func encodeBad(dst []byte, r *record) []byte { // want `codec bad: field record\.B is written by the encoder but never read by the decoder` `codec bad: field record\.C is read by the decoder but never written by the encoder` `codec bad: field record\.D is covered by neither encoder nor decoder`
	dst = put32(dst, r.A)
	dst = put32(dst, r.B)
	return dst
}

//p2p:codec bad decode
func decodeBad(b []byte) record {
	var r record
	r.A = get32(b[0:])
	r.C = get32(b[4:])
	return r
}

//p2p:codec
type pair struct {
	X uint32
	Y uint32
}

//p2p:codec pair encode
func encodePair(dst []byte, p *pair) []byte {
	dst = put32(dst, p.X)
	dst = put32(dst, p.Y)
	return dst
}

// decodePair's unkeyed literal positionally covers every field.
//
//p2p:codec pair decode
func decodePair(b []byte) pair {
	return pair{get32(b[0:]), get32(b[4:])}
}

//p2p:codec lonely encode
func encodeLonely(dst []byte, r *record) []byte { // want `codec lonely has encode functions but no decode functions in this package`
	return put32(dst, r.A)
}

//p2p:codec
func orphan() {} // want `malformed //p2p:codec directive on a function: want //p2p:codec <name> encode\|decode`

//p2p:codec wire encode
type wrong struct{ X uint32 } // want `//p2p:codec on a struct type takes no arguments`

//p2p:codec
type alias uint32 // want `//p2p:codec on a non-struct type has no effect`

type plain struct {
	X uint32 //p2p:codecskip // want `//p2p:codecskip on a field of a struct without //p2p:codec has no effect`
}

//p2p:codec
type frame struct {
	N uint32
	M uint32 //p2p:codecskip // want `//p2p:codecskip requires a reason`
}
