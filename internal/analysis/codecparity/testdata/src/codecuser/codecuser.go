// Package codecuser imports codecdep and checks that struct opt-in and
// field-skip contracts cross the package boundary through facts: Body
// is enc-only (reported), Tag is waived by the declaring package's
// //p2p:codecskip.
package codecuser

import "codecdep"

func put32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

//p2p:codec pay encode
func encode(dst []byte, p *codecdep.Payload) []byte { // want `codec pay: field Payload\.Body is written by the encoder but never read by the decoder`
	dst = put32(dst, p.ID)
	dst = append(dst, p.Body...)
	return dst
}

//p2p:codec pay decode
func decode(b []byte) codecdep.Payload {
	var p codecdep.Payload
	p.ID = get32(b)
	return p
}
