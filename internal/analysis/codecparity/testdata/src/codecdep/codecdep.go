// Package codecdep declares an opted-in codec struct whose opt-in and
// skip facts flow to the importing fixture (codecuser), where the codec
// functions live.
package codecdep

//p2p:codec
type Payload struct {
	ID   uint32
	Body []byte
	Tag  uint32 //p2p:codecskip diagnostic label, recomputed on decode
}
