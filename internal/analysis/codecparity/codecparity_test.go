package codecparity_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/codecparity"
)

func TestCodecParity(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{codecparity.Analyzer}, "codectest")
}

func TestCodecParityCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{codecparity.Analyzer}, "codecuser")
}
