// Package codecparity implements the p2pvet analyzer that proves
// encoder/decoder field parity: for every named codec, the set of
// struct fields the encode side writes must equal the set the decode
// side reads, and every field of an opted-in struct must be covered by
// both sides or explicitly waived. When a snapshot or frame struct
// gains a field that one side forgets, the build fails instead of the
// filter silently restoring with a stale or zero field — the bug class
// where a serialization gap becomes an invisible false-negative /
// false-positive shift in the restored filter.
//
// Annotation grammar:
//
//   - "//p2p:codec <name> encode" / "//p2p:codec <name> decode" on a
//     function assigns it to one side of the named codec; a codec's
//     field set is the union over its functions, and both sides must
//     live in the same package so the comparison is complete.
//   - a bare "//p2p:codec" on a struct type opts the struct into
//     parity checking for every codec that mentions it (exported to
//     importing packages as a fact).
//   - "//p2p:codecskip <reason>" on a struct field waives the
//     coverage requirement for that field — the author documents why
//     it is deliberately not serialized.
//
// A side "mentions" a field when any of its functions selects it
// (read or write) or names it in a keyed composite literal; an
// unkeyed composite literal mentions every field. Mentions are purely
// syntactic over the side's function bodies — helper functions must
// themselves be annotated to contribute, which keeps the field sets
// reviewable at the annotation sites.
package codecparity

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"p2pbound/internal/analysis"
)

// Analyzer is the encoder/decoder field-parity checker.
var Analyzer = &analysis.Analyzer{
	Name: "codecparity",
	Doc:  "check that codec encoders and decoders cover the same struct field sets",
	Run:  run,
}

// Fact-key prefixes: "st|<pkg>.<Name>" marks a struct opted into parity
// checking; "skip|<pkg>.<Name>.<Field>" marks a field waived by
// //p2p:codecskip. Both are exported by the declaring package so codecs
// in importing packages see the same contract.
const (
	factStruct = "st|"
	factSkip   = "skip|"
)

// codec accumulates one named codec's two sides within a package.
type codec struct {
	encFuncs, decFuncs []*ast.FuncDecl
	// enc and dec map struct key -> field name -> mentioned.
	enc, dec map[string]map[string]bool
	// structs holds a representative type per mentioned struct key, for
	// field enumeration.
	structs map[string]*types.Struct
	anchor  token.Pos // earliest codec-function declaration, anchors codec-level diagnostics
}

type checker struct {
	pass *analysis.Pass
	// localStructs and localSkips mirror the facts for structs declared
	// in the package under analysis.
	localStructs map[string]bool
	localSkips   map[string]bool
	codecs       map[string]*codec
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:         pass,
		localStructs: make(map[string]bool),
		localSkips:   make(map[string]bool),
		codecs:       make(map[string]*codec),
	}
	c.collectStructs()
	c.collectFuncs()
	for _, cd := range c.codecs {
		for _, fd := range cd.encFuncs {
			c.mentions(fd, cd, cd.enc)
		}
		for _, fd := range cd.decFuncs {
			c.mentions(fd, cd, cd.dec)
		}
	}
	c.compare()
	return nil
}

// collectStructs finds //p2p:codec struct opt-ins and //p2p:codecskip
// field waivers declared in this package, recording them locally and as
// facts.
func (c *checker) collectStructs() {
	pkgPath := c.pass.Pkg.Path()
	for _, file := range c.pass.Files {
		if c.pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				c.checkDirectiveShape(doc, ts.Pos())
				opted := analysis.HasDirective(doc, analysis.DirectiveCodec) ||
					analysis.HasDirective(ts.Comment, analysis.DirectiveCodec)
				st, isStruct := ts.Type.(*ast.StructType)
				if opted && !isStruct {
					c.pass.Reportf(ts.Pos(), "//p2p:codec on a non-struct type has no effect")
					continue
				}
				if !isStruct {
					continue
				}
				key := pkgPath + "." + ts.Name.Name
				if opted {
					c.localStructs[key] = true
					c.pass.ExportFact(factStruct + key)
				}
				for _, f := range st.Fields.List {
					skip := analysis.HasDirective(f.Doc, analysis.DirectiveCodecSkip) ||
						analysis.HasDirective(f.Comment, analysis.DirectiveCodecSkip)
					if !skip {
						continue
					}
					if !opted {
						c.pass.Reportf(f.Pos(), "//p2p:codecskip on a field of a struct without //p2p:codec has no effect")
						continue
					}
					if !skipHasReason(f.Doc) && !skipHasReason(f.Comment) {
						c.pass.Reportf(f.Pos(), "//p2p:codecskip requires a reason: //p2p:codecskip <why this field is not serialized>")
					}
					for _, name := range f.Names {
						fkey := key + "." + name.Name
						c.localSkips[fkey] = true
						c.pass.ExportFact(factSkip + fkey)
					}
				}
			}
		}
	}
}

// skipHasReason reports whether some //p2p:codecskip occurrence in the
// group carries at least one argument.
func skipHasReason(cg *ast.CommentGroup) bool {
	for _, args := range analysis.DirectiveArgs(cg, analysis.DirectiveCodecSkip) {
		if len(args) > 0 {
			return true
		}
	}
	return false
}

// checkDirectiveShape reports a struct-level //p2p:codec that carries
// arguments — the struct form is bare; the <name> <side> form belongs
// on functions.
func (c *checker) checkDirectiveShape(doc *ast.CommentGroup, pos token.Pos) {
	for _, args := range analysis.DirectiveArgs(doc, analysis.DirectiveCodec) {
		if len(args) != 0 {
			c.pass.Reportf(pos, "//p2p:codec on a struct type takes no arguments; the \"<name> encode|decode\" form belongs on functions")
		}
	}
}

// collectFuncs gathers the package's codec functions per name and side.
func (c *checker) collectFuncs() {
	for _, file := range c.pass.Files {
		if c.pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, args := range analysis.DirectiveArgs(fd.Doc, analysis.DirectiveCodec) {
				if len(args) != 2 || (args[1] != "encode" && args[1] != "decode") {
					c.pass.Reportf(fd.Pos(), "malformed //p2p:codec directive on a function: want //p2p:codec <name> encode|decode")
					continue
				}
				cd := c.codecs[args[0]]
				if cd == nil {
					cd = &codec{
						enc:     make(map[string]map[string]bool),
						dec:     make(map[string]map[string]bool),
						structs: make(map[string]*types.Struct),
						anchor:  fd.Pos(),
					}
					c.codecs[args[0]] = cd
				}
				if fd.Pos() < cd.anchor {
					cd.anchor = fd.Pos()
				}
				if args[1] == "encode" {
					cd.encFuncs = append(cd.encFuncs, fd)
				} else {
					cd.decFuncs = append(cd.decFuncs, fd)
				}
			}
		}
	}
}

// mentions records, into side, every opted-in struct field the function
// body selects or names in a composite literal.
func (c *checker) mentions(fd *ast.FuncDecl, cd *codec, side map[string]map[string]bool) {
	if fd.Body == nil {
		return
	}
	info := c.pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			s, ok := info.Selections[n]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			key, st := c.codecStruct(s.Recv())
			if key == "" {
				return true
			}
			cd.structs[key] = st
			mark(side, key, n.Sel.Name)
		case *ast.CompositeLit:
			key, st := c.codecStruct(info.TypeOf(n))
			if key == "" {
				return true
			}
			cd.structs[key] = st
			keyed := true
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					keyed = false
					break
				}
				if id, ok := kv.Key.(*ast.Ident); ok {
					mark(side, key, id.Name)
				}
			}
			if !keyed {
				// An unkeyed literal positionally covers every field.
				for i := 0; i < st.NumFields(); i++ {
					mark(side, key, st.Field(i).Name())
				}
			}
		}
		return true
	})
}

func mark(side map[string]map[string]bool, key, field string) {
	m := side[key]
	if m == nil {
		m = make(map[string]bool)
		side[key] = m
	}
	m[field] = true
}

// codecStruct resolves t (possibly behind a pointer) to an opted-in
// codec struct, returning its fact key and field layout, or "" when the
// type is not an opted-in struct.
func (c *checker) codecStruct(t types.Type) (string, *types.Struct) {
	if t == nil {
		return "", nil
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", nil
	}
	key := obj.Pkg().Path() + "." + obj.Name()
	if !c.localStructs[key] && !c.pass.ImportedFact(factStruct+key) {
		return "", nil
	}
	return key, st
}

func (c *checker) skipped(fieldKey string) bool {
	return c.localSkips[fieldKey] || c.pass.ImportedFact(factSkip+fieldKey)
}

// compare emits the parity and coverage diagnostics for every codec in
// deterministic order.
func (c *checker) compare() {
	names := make([]string, 0, len(c.codecs))
	for name := range c.codecs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cd := c.codecs[name]
		if len(cd.encFuncs) == 0 {
			c.pass.Reportf(cd.anchor, "codec "+name+" has decode functions but no encode functions in this package; both sides must live together so field parity can be checked")
			continue
		}
		if len(cd.decFuncs) == 0 {
			c.pass.Reportf(cd.anchor, "codec "+name+" has encode functions but no decode functions in this package; both sides must live together so field parity can be checked")
			continue
		}
		keys := make([]string, 0, len(cd.structs))
		for key := range cd.structs {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			st := cd.structs[key]
			enc, dec := cd.enc[key], cd.dec[key]
			short := shortName(key)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i).Name()
				label := short + "." + f
				switch {
				case enc[f] && !dec[f]:
					c.pass.Reportf(cd.anchor, "codec "+name+": field "+label+" is written by the encoder but never read by the decoder")
				case dec[f] && !enc[f]:
					c.pass.Reportf(cd.anchor, "codec "+name+": field "+label+" is read by the decoder but never written by the encoder")
				case !enc[f] && !dec[f] && !c.skipped(key+"."+f):
					c.pass.Reportf(cd.anchor, "codec "+name+": field "+label+" is covered by neither encoder nor decoder; serialize it on both sides or mark it //p2p:codecskip")
				}
			}
		}
	}
}

// shortName trims the package path off a struct fact key for
// diagnostics: "p2pbound/internal/replica.Frame" -> "Frame".
func shortName(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[i+1:]
		}
	}
	return key
}
