// Package confdep declares a confinement group whose facts flow to the
// importing fixture (confuser).
package confdep

type Node struct {
	Seq int64 //p2p:confined nodegrp
}

//p2p:confined nodegrp
func Step(n *Node) {
	n.Seq++
}

//p2p:confined nodegrp entry
func Tick(n *Node) {
	Step(n)
}
