// Package conftest exercises the confine analyzer within one package:
// confined fields, member/entry grammar, closure escapes, go-spawn
// exemption, value escapes, and malformed directives.
package conftest

type shard struct {
	now   int64 //p2p:confined shardgrp
	total int64
}

//p2p:confined shardgrp
func (s *shard) touch(ts int64) {
	if ts > s.now {
		s.now = ts
	}
}

// Process is the API entry: callers are unrestricted, the doc carries
// the single-goroutine contract.
//
//p2p:confined shardgrp entry
func (s *shard) Process(ts int64) {
	s.touch(ts)
	s.total++
}

// stats is unannotated: reading confined state from it is a violation.
func stats(s *shard) int64 {
	return s.now // want `field conftest\.shard\.now is confined to group shardgrp but is accessed from function stats`
}

// callsMember calls a member without holding the group.
func callsMember(s *shard) {
	s.touch(1) // want `touch is confined to group shardgrp but is called from function callsMember`
}

// spawns hands ownership off with go: the spawn is the handoff.
func spawns(s *shard) {
	go s.touch(1)
}

// anyCaller may call the entry from anywhere.
func anyCaller(s *shard) {
	s.Process(5)
}

// construct builds the struct; keyed composite literals are
// construction, not access.
func construct() *shard {
	return &shard{now: 0}
}

// leaks calls a member inside a func literal; the closure may run on
// any goroutine.
func leaks(s *shard) func() {
	return func() { s.touch(2) } // want `touch is confined to group shardgrp but is called inside a func literal`
}

// flush is a member, but the closure it builds still escapes the
// owning goroutine.
//
//p2p:confined shardgrp
func (s *shard) flush() {
	f := func() { s.now = 0 } // want `field conftest\.shard\.now is confined to group shardgrp but escapes into a func literal`
	f()
}

// value captures a member as a function value.
func value(s *shard) {
	f := s.touch // want `touch is confined to group shardgrp but escapes as a function value`
	f(1)
}

type ring struct {
	tail int //p2p:confined loopgrp
}

//p2p:confined loopgrp
func spin(r *ring) {
	r.tail++
}

// bridge belongs to both groups: two directive lines, one per group.
//
//p2p:confined shardgrp
//p2p:confined loopgrp
func bridge(s *shard, r *ring) {
	s.touch(1)
	spin(r)
}

// goSpawn spawns a package-level member directly.
func goSpawn(r *ring) {
	go spin(r)
}

// leakLocal leaks a package-level member as a value.
func leakLocal() {
	f := spin // want `spin is confined to group loopgrp but escapes as a function value`
	_ = f
}

//p2p:confined
func badDirective() {} // want `malformed //p2p:confined directive on badDirective`

type mis struct {
	x int //p2p:confined grp extra // want `malformed //p2p:confined directive on a field of mis`
}
