// Package confuser imports confdep and checks that confinement crosses
// the package boundary through facts. A caller holding none of the
// groups sees the fallback group name "declared-elsewhere" (boolean
// facts cannot be enumerated).
package confuser

import "confdep"

func bad(n *confdep.Node) int64 {
	confdep.Step(n) // want `Step is confined to group declared-elsewhere but is called from function bad`
	return n.Seq    // want `field confdep\.Node\.Seq is confined to group declared-elsewhere but is accessed from function bad`
}

// good calls the entry (unrestricted) and spawns the member directly.
func good(n *confdep.Node) {
	confdep.Tick(n)
	go confdep.Step(n)
}

// member holds the group declared in confdep: fact probes of the held
// group recover the membership.
//
//p2p:confined nodegrp
func member(n *confdep.Node) {
	n.Seq = 0
	confdep.Step(n)
}
