package confine_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/confine"
)

func TestConfine(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{confine.Analyzer}, "conftest")
}

func TestConfineCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{confine.Analyzer}, "confuser")
}
