// Package confine implements the p2pvet analyzer that proves
// goroutine-confinement annotations: state marked //p2p:confined is
// touched only by the functions of its ownership group, so the SPSC
// rings, per-shard tenant LRUs, replica nodes, and arena bookkeeping
// the chaos suites exercise dynamically are closed off statically.
//
// The annotation grammar (shared with DESIGN.md §16):
//
//   - on a struct field, "//p2p:confined <group>" declares the field
//     owned by whichever goroutine runs the group's functions;
//   - on a function, "//p2p:confined <group>" makes it a member: it may
//     touch the group's fields, and it may be called only from other
//     members/entries of the group or spawned directly by a go
//     statement (the spawn is the ownership handoff);
//   - "//p2p:confined <group> entry" marks an API entry point: it may
//     touch the group's fields and call its members, but its own
//     callers are unrestricted — the function's documentation carries
//     the single-goroutine contract (e.g. "must not run concurrently
//     with packet processing").
//
// A function (or field) may carry several //p2p:confined lines and
// belong to several groups. The checks:
//
//   - accessing a confined field from a function holding none of the
//     field's groups is reported (keyed and positional composite
//     literals are construction, not access, and stay exempt);
//   - accessing a confined field inside a func literal is reported even
//     within a member — a closure may escape to another goroutine;
//   - calling a member from a non-member is reported unless the call is
//     the direct operand of a go statement;
//   - referencing a member as a function value is reported: the value
//     may be called from anywhere.
//
// Cross-package confinement flows through facts: the declaring package
// exports each confined function and field key with its groups, and
// importing packages check accesses and calls against them.
package confine

import (
	"go/ast"
	"go/types"

	"p2pbound/internal/analysis"
)

// Analyzer is the goroutine-confinement checker.
var Analyzer = &analysis.Analyzer{
	Name: "confine",
	Doc:  "check that //p2p:confined state is only touched by its owning group's functions",
	Run:  run,
}

// Fact-key prefixes. A confined function exports "fn|<key>" plus
// "fn|<key>|<group>" per group (entries export only the group forms —
// their callers are unrestricted, so the bare restricted-callee key is
// deliberately absent); a confined field exports "fld|<key>" plus
// "fld|<key>|<group>".
const (
	factFn  = "fn|"
	factFld = "fld|"
)

// roles holds one function's confinement annotation.
type roles struct {
	groups map[string]bool
	entry  bool // every group came with the entry keyword
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Phase 1: collect annotated functions and fields declared here.
	funcs := make(map[*types.Func]*roles)
	fields := make(map[*types.Var]map[string]bool) // field -> groups
	fieldKey := make(map[*types.Var]string)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			args := analysis.DirectiveArgs(fd.Doc, analysis.DirectiveConfined)
			if len(args) == 0 {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			r := &roles{groups: make(map[string]bool), entry: true}
			for _, a := range args {
				switch {
				case len(a) == 1:
					r.groups[a[0]] = true
					r.entry = false
				case len(a) == 2 && a[1] == "entry":
					r.groups[a[0]] = true
				default:
					pass.Reportf(fd.Pos(), "malformed //p2p:confined directive on "+fn.Name()+": want \"//p2p:confined <group>\" or \"//p2p:confined <group> entry\"")
				}
			}
			if len(r.groups) == 0 {
				continue
			}
			funcs[fn] = r
			key := analysis.FuncKey(fn)
			if !r.entry {
				pass.ExportFact(factFn + key)
			}
			for g := range r.groups {
				pass.ExportFact(factFn + key + "|" + g)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				args := analysis.DirectiveArgs(field.Doc, analysis.DirectiveConfined)
				args = append(args, analysis.DirectiveArgs(field.Comment, analysis.DirectiveConfined)...)
				if len(args) == 0 {
					continue
				}
				groups := make(map[string]bool)
				for _, a := range args {
					if len(a) != 1 {
						pass.Reportf(field.Pos(), "malformed //p2p:confined directive on a field of "+ts.Name.Name+": want \"//p2p:confined <group>\"")
						continue
					}
					groups[a[0]] = true
				}
				if len(groups) == 0 {
					continue
				}
				for _, name := range field.Names {
					obj, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					fields[obj] = groups
					key := analysis.FieldKey(pass.Pkg.Path(), ts.Name.Name, name.Name)
					fieldKey[obj] = key
					pass.ExportFact(factFld + key)
					for g := range groups {
						pass.ExportFact(factFld + key + "|" + g)
					}
				}
			}
			return true
		})
	}

	// Phase 2: audit every function body.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var held map[string]bool
			holder := "function " + fd.Name.Name
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				if r, ok := funcs[fn]; ok {
					held = r.groups
				}
			}
			w := &walker{
				pass: pass, funcs: funcs, fields: fields, fieldKey: fieldKey,
				held: held, holder: holder,
			}
			w.walk(fd.Body)
		}
	}
	return nil
}

// walker audits one function body, tracking the ancestor chain (for
// call/go contexts) and func-literal depth (for closure escapes).
type walker struct {
	pass     *analysis.Pass
	funcs    map[*types.Func]*roles
	fields   map[*types.Var]map[string]bool
	fieldKey map[*types.Var]string
	held     map[string]bool
	holder   string
	stack    []ast.Node
	litDepth int
}

func (w *walker) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			if _, ok := w.stack[len(w.stack)-1].(*ast.FuncLit); ok {
				w.litDepth--
			}
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		w.stack = append(w.stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			w.litDepth++
		case *ast.SelectorExpr:
			w.checkSelector(n)
		case *ast.Ident:
			// The Sel of a selector was already judged at the selector
			// node; a bare identifier reference is judged here.
			if len(w.stack) >= 2 {
				if sel, ok := w.stack[len(w.stack)-2].(*ast.SelectorExpr); ok && sel.Sel == n {
					return true
				}
			}
			w.checkFuncRef(n, w.pass.TypesInfo.Uses[n])
		}
		return true
	})
}

// holdsAny reports whether the auditing function holds one of the
// required groups. Inside a func literal nothing is held: the closure
// may run on any goroutine.
func (w *walker) holdsAny(required map[string]bool) bool {
	if w.litDepth > 0 {
		return false
	}
	for g := range required {
		if w.held[g] {
			return true
		}
	}
	return false
}

// groupList renders a group set for a diagnostic, smallest first for
// determinism.
func groupList(groups map[string]bool) string {
	best := ""
	for g := range groups {
		if best == "" || g < best {
			best = g
		}
	}
	return best
}

// checkSelector audits x.f: confined-field accesses and member-method
// references.
func (w *walker) checkSelector(sel *ast.SelectorExpr) {
	s, ok := w.pass.TypesInfo.Selections[sel]
	if !ok {
		// Package-qualified references (pkg.Fn) have no selection entry;
		// resolve the function through Uses.
		if fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			w.checkFuncUse(sel, fn)
		}
		return
	}
	switch s.Kind() {
	case types.FieldVal:
		v, ok := s.Obj().(*types.Var)
		if !ok || !v.IsField() {
			return
		}
		key, groups := w.fieldGroups(sel, v)
		if groups == nil {
			return
		}
		if w.holdsAny(groups) {
			return
		}
		g := groupList(groups)
		if w.litDepth > 0 {
			w.pass.Reportf(sel.Pos(), "field "+key+" is confined to group "+g+" but escapes into a func literal here; closures may run on any goroutine — hoist the access to the owning function")
			return
		}
		w.pass.Reportf(sel.Pos(), "field "+key+" is confined to group "+g+" but is accessed from "+w.holder+", which is not a member; annotate the function //p2p:confined "+g+" (or "+g+" entry) or route the access through the owning goroutine")
	case types.MethodVal:
		fn, ok := s.Obj().(*types.Func)
		if ok {
			w.checkFuncUse(sel, fn)
		}
	}
}

// checkFuncRef audits a bare identifier resolving to a confined
// package-level function.
func (w *walker) checkFuncRef(id *ast.Ident, obj types.Object) {
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	w.checkFuncUse(id, fn)
}

// checkFuncUse audits one reference to fn (via selector or identifier):
// a call requires shared group membership or a direct go spawn; any
// non-call reference leaks the member as a value.
func (w *walker) checkFuncUse(ref ast.Node, fn *types.Func) {
	key, groups, restricted := w.funcGroups(fn)
	if !restricted {
		return
	}
	g := groupList(groups)
	switch w.refContext(ref) {
	case refGo:
		return // go m.worker(...): the spawn is the ownership handoff
	case refCall:
		if w.holdsAny(groups) {
			return
		}
		if w.litDepth > 0 {
			w.pass.Reportf(ref.Pos(), key+" is confined to group "+g+" but is called inside a func literal here; closures may run on any goroutine — spawn the member directly with go, or call it from a member")
			return
		}
		w.pass.Reportf(ref.Pos(), key+" is confined to group "+g+" but is called from "+w.holder+", which is not a member; annotate the caller //p2p:confined "+g+" (or "+g+" entry), or spawn it directly with go")
	default:
		w.pass.Reportf(ref.Pos(), key+" is confined to group "+g+" but escapes as a function value here; a captured member can be invoked from any goroutine")
	}
}

type refKind int

const (
	refValue refKind = iota
	refCall
	refGo
)

// refContext classifies how the function reference on top of the stack
// is used: as the callee of a plain call, as the callee of a go
// statement's call, or as a first-class value. ref is always the node
// currently on top of the walker's stack (a SelectorExpr for method and
// qualified references, an Ident otherwise).
func (w *walker) refContext(ref ast.Node) refKind {
	i := len(w.stack) - 2
	for i >= 0 {
		if _, ok := w.stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return refValue
	}
	call, ok := w.stack[i].(*ast.CallExpr)
	if !ok || unparen(call.Fun) != ref {
		return refValue
	}
	if i > 0 {
		if g, ok := w.stack[i-1].(*ast.GoStmt); ok && g.Call == call {
			return refGo
		}
	}
	return refCall
}

// fieldGroups resolves the confinement groups of a field: locally for
// fields declared in this package, via imported facts otherwise.
func (w *walker) fieldGroups(sel *ast.SelectorExpr, v *types.Var) (string, map[string]bool) {
	if groups, ok := w.fields[v]; ok {
		return w.fieldKey[v], groups
	}
	if v.Pkg() == nil || v.Pkg() == w.pass.Pkg {
		return "", nil
	}
	key := w.keyOf(sel, v)
	if !w.pass.ImportedFact(factFld + key) {
		return "", nil
	}
	return key, w.factGroups(factFld + key + "|")
}

// funcGroups resolves a function's confinement: (key, groups,
// restricted). Entries are unrestricted callees and return false.
func (w *walker) funcGroups(fn *types.Func) (string, map[string]bool, bool) {
	key := analysis.FuncKey(fn)
	if fn.Pkg() == w.pass.Pkg {
		if r, ok := w.funcs[fn]; ok && !r.entry {
			return fn.Name(), r.groups, true
		}
		// Value/pointer receiver variants resolve to distinct objects;
		// fall back to key comparison.
		for cand, r := range w.funcs {
			if !r.entry && analysis.FuncKey(cand) == key {
				return fn.Name(), r.groups, true
			}
		}
		return "", nil, false
	}
	if !w.pass.ImportedFact(factFn + key) {
		return "", nil, false
	}
	return fn.Name(), w.factGroups(factFn + key + "|"), true
}

// factGroups recovers a symbol's group set from imported facts by
// probing the groups this package's annotations name, plus the groups
// named by any annotation the auditing function holds. Boolean facts
// cannot be enumerated, so membership tests drive the recovery: what
// matters is whether the auditing function's held groups intersect the
// symbol's, and that needs only probes of the held groups (plus one
// fallback name for the diagnostic).
func (w *walker) factGroups(prefix string) map[string]bool {
	groups := make(map[string]bool)
	for g := range w.held {
		if w.pass.ImportedFact(prefix + g) {
			groups[g] = true
		}
	}
	if len(groups) == 0 {
		// No overlap with held groups — the access is a violation; name
		// the group as unknown-but-foreign for the diagnostic.
		groups["declared-elsewhere"] = true
	}
	return groups
}

// keyOf reconstructs a field's declaring-struct fact key from the
// selection's receiver type.
func (w *walker) keyOf(sel *ast.SelectorExpr, v *types.Var) string {
	pkgPath := ""
	if v.Pkg() != nil {
		pkgPath = v.Pkg().Path()
	}
	structName := "?"
	if s, ok := w.pass.TypesInfo.Selections[sel]; ok {
		t := types.Unalias(s.Recv())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			structName = named.Obj().Name()
		}
	}
	return analysis.FieldKey(pkgPath, structName, v.Name())
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
