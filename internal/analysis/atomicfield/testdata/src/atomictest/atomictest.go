// Package atomictest seeds the atomicfield rules, including the exact
// torn-read pattern the analyzer exists to prevent: a plain int64
// written atomically by one goroutine and read bare by another.
package atomictest

import "sync/atomic"

type stats struct {
	hits  int64        //p2p:atomic
	typed atomic.Int64 //p2p:atomic
	name  string       //p2p:atomic // want `supports neither sync/atomic operations nor a sync/atomic type`
	plain int64
}

// good shows the two legal shapes: &field passed straight to a
// sync/atomic function, and any use of a sync/atomic-typed field.
func good(s *stats) int64 {
	atomic.AddInt64(&s.hits, 1)
	s.typed.Add(1)
	_ = s.typed.Load()
	return atomic.LoadInt64(&s.hits)
}

// torn reproduces the observability-PR bug class: the write side is
// atomic, the read side tears.
func torn(s *stats) int64 {
	atomic.AddInt64(&s.hits, 1)
	return s.hits // want `annotated //p2p:atomic but is accessed non-atomically`
}

func writes(s *stats) {
	s.hits = 1   // want `accessed non-atomically`
	s.hits++     // want `accessed non-atomically`
	p := &s.hits // want `accessed non-atomically`
	_ = p
}

// reverse: an unannotated plain field used atomically must gain the
// annotation so every other access is held to the discipline.
func reverse(s *stats) {
	atomic.AddInt64(&s.plain, 1) // want `not annotated //p2p:atomic`
}
