// Package atomicfield implements the p2pvet analyzer that proves the
// single-writer/concurrent-reader stats discipline: a struct field
// annotated //p2p:atomic may only be touched through sync/atomic
// operations, so a monitoring goroutine can never observe a torn value.
// This is the static form of the torn-read bug class fixed in the
// observability PR, where a plain int64 stats field was written by the
// packet goroutine and read bare by the metrics scraper.
//
// The rules:
//
//   - A field of a sync/atomic type (atomic.Int64, atomic.Uint64, …) is
//     atomic by construction; any use is legal and the annotation is
//     purely documentary.
//   - A plain integer field (int32/64, uint32/64, uintptr) annotated
//     //p2p:atomic may appear ONLY as &x.f passed directly to a
//     sync/atomic function (atomic.LoadInt64(&x.f), atomic.AddInt64,
//     CompareAndSwap…). Every other read, write, ++/--, or address
//     capture is reported.
//   - A field of any other type cannot be made atomic by discipline and
//     the annotation itself is reported.
//   - Conversely, a plain integer field passed to sync/atomic that is
//     NOT annotated is reported too: the annotation is the contract the
//     next reader sees, so atomically-used fields must carry it.
//
// Cross-package accesses are covered by facts: the declaring package
// exports the key of every annotated field, and importing packages
// check their accesses against those keys.
package atomicfield

import (
	"go/ast"
	"go/types"

	"p2pbound/internal/analysis"
)

// Analyzer is the atomic-field discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "check that //p2p:atomic struct fields are only accessed through sync/atomic operations",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Phase 1: collect annotated fields declared in this package.
	local := make(map[*types.Var]string) // field object -> fact key
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !analysis.HasDirective(field.Doc, analysis.DirectiveAtomic) &&
					!analysis.HasDirective(field.Comment, analysis.DirectiveAtomic) {
					continue
				}
				for _, name := range field.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					key := analysis.FieldKey(pass.Pkg.Path(), ts.Name.Name, name.Name)
					switch classify(obj.Type()) {
					case kindTyped:
						// Atomic by construction; export for documentation
						// consistency but nothing to police.
						pass.ExportFact(key)
					case kindPlain:
						local[obj] = key
						pass.ExportFact(key)
					default:
						pass.Reportf(name.Pos(), "field "+name.Name+" is annotated //p2p:atomic but its type ("+obj.Type().String()+") supports neither sync/atomic operations nor a sync/atomic type; use atomic.Int64/Uint64/Pointer or drop the annotation")
					}
				}
			}
			return true
		})
	}

	// Phase 2: audit every field access in non-test files.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		w := &walker{pass: pass, local: local}
		w.walk(file)
	}
	return nil
}

type fieldKind int

const (
	kindOther fieldKind = iota
	kindTyped           // a sync/atomic type: safe by construction
	kindPlain           // a plain integer: needs the &field-to-atomic discipline
)

func classify(t types.Type) fieldKind {
	if named, ok := types.Unalias(t).(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return kindTyped
		}
	}
	if b, ok := types.Unalias(t).Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr:
			return kindPlain
		}
	}
	return kindOther
}

// walker tracks the ancestor chain so a SelectorExpr can be judged by
// its context: the only legal context for a plain //p2p:atomic field is
// CallExpr(atomicFunc, ..., UnaryExpr(&, SelectorExpr), ...).
type walker struct {
	pass  *analysis.Pass
	local map[*types.Var]string
	stack []ast.Node
}

func (w *walker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			w.stack = w.stack[:len(w.stack)-1]
			return true
		}
		w.stack = append(w.stack, n)
		if sel, ok := n.(*ast.SelectorExpr); ok {
			w.checkSelector(sel)
		}
		return true
	})
}

// checkSelector audits one x.f expression.
func (w *walker) checkSelector(sel *ast.SelectorExpr) {
	obj := w.fieldObject(sel)
	if obj == nil {
		return
	}
	key, annotated := w.annotationKey(sel, obj)
	if classify(obj.Type()) != kindPlain {
		return // typed atomics (and non-integer fields) need no use-site audit
	}
	legal := w.inAtomicCall()
	switch {
	case annotated && !legal:
		w.pass.Reportf(sel.Pos(), "field "+key+" is annotated //p2p:atomic but is accessed non-atomically here; use sync/atomic (atomic.LoadInt64(&x."+obj.Name()+"), atomic.AddInt64, …)")
	case !annotated && legal:
		w.pass.Reportf(sel.Pos(), "field "+key+" is accessed atomically here but its declaration is not annotated //p2p:atomic; annotate the field so every other access is held to the same discipline")
	}
}

// fieldObject resolves sel to the struct-field *types.Var it denotes,
// or nil when sel is not a field selection.
func (w *walker) fieldObject(sel *ast.SelectorExpr) *types.Var {
	if s, ok := w.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// annotationKey reports the fact key for the field and whether it is
// annotated //p2p:atomic — locally for fields declared in this package,
// via imported facts otherwise.
func (w *walker) annotationKey(sel *ast.SelectorExpr, obj *types.Var) (string, bool) {
	if key, ok := w.local[obj]; ok {
		return key, true
	}
	key := w.keyOf(sel, obj)
	if obj.Pkg() != nil && obj.Pkg() != w.pass.Pkg {
		return key, w.pass.ImportedFact(key)
	}
	return key, false
}

// keyOf reconstructs the declaring-struct fact key of a field access by
// walking the receiver type of the selection.
func (w *walker) keyOf(sel *ast.SelectorExpr, obj *types.Var) string {
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	structName := "?"
	if s, ok := w.pass.TypesInfo.Selections[sel]; ok {
		t := types.Unalias(s.Recv())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			structName = named.Obj().Name()
		}
	}
	return analysis.FieldKey(pkgPath, structName, obj.Name())
}

// inAtomicCall reports whether the selector currently on top of the
// stack sits in the one legal position: &x.f as a direct argument of a
// sync/atomic call. The stack ends [..., CallExpr, UnaryExpr, SelectorExpr].
func (w *walker) inAtomicCall() bool {
	n := len(w.stack)
	if n < 3 {
		return false
	}
	addr, ok := w.stack[n-2].(*ast.UnaryExpr)
	if !ok || addr.Op.String() != "&" {
		return false
	}
	call, ok := w.stack[n-3].(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, arg := range call.Args {
		if arg == w.stack[n-2] {
			return isAtomicFunc(w.pass.TypesInfo, call)
		}
	}
	return false
}

// isAtomicFunc reports whether the call's static callee is a
// package-level function of sync/atomic.
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
