package atomicfield_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{atomicfield.Analyzer}, "atomictest")
}
