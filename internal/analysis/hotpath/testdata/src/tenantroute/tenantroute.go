// Package tenantroute fixes the multi-tenant per-packet routing
// discipline TenantManager relies on: the route lookup — one atomic
// table load, a shift, and at most two reads of an immutable map — is
// allocation- and lock-free, while the control plane (registration
// under a mutex, hydration, map cloning) is ordinary Go that the hot
// path may not call into. The golden test asserts the only diagnostics
// are the violations at the bottom.
package tenantroute

import (
	"sync"
	"sync/atomic"
)

type tenant struct {
	shard int
	hits  atomic.Int64
}

// table is the immutable routing state, swapped copy-on-write.
type table struct {
	shift uint
	byKey map[uint32]*tenant
}

type manager struct {
	mu     sync.Mutex
	routes atomic.Pointer[table]
	miss   atomic.Int64
}

// addTenant is control plane: clone-and-swap under the registration
// lock. Unannotated, so its lock, map literal, and per-entry copies
// draw no diagnostics.
func addTenant(m *manager, key uint32, t *tenant) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.routes.Load()
	byKey := make(map[uint32]*tenant, len(old.byKey)+1)
	for k, v := range old.byKey {
		byKey[k] = v
	}
	byKey[key] = t
	m.routes.Store(&table{shift: old.shift, byKey: byKey})
}

// hydrate is likewise control plane — it allocates filter storage.
func hydrate(t *tenant) {
	_ = make([]uint64, 1<<10)
}

// route is the per-packet fast path: source key first (the outbound
// view), then destination. Atomic loads, shifts, and immutable map
// index reads are all allowed.
//
//p2p:hotpath
func route(m *manager, src, dst uint32) *tenant {
	rt := m.routes.Load()
	if t := rt.byKey[src>>rt.shift]; t != nil {
		return t
	}
	if t := rt.byKey[dst>>rt.shift]; t != nil {
		return t
	}
	m.miss.Add(1)
	return nil
}

//p2p:hotpath
func touch(t *tenant) int {
	t.hits.Add(1)
	return t.shard
}

// lockedRoute is the violation the copy-on-write table exists to avoid:
// a registration lock on the per-packet path.
//
//p2p:hotpath
func lockedRoute(m *manager, src uint32) *tenant {
	m.mu.Lock() // want `may not acquire locks`
	rt := m.routes.Load()
	t := rt.byKey[src>>rt.shift]
	m.mu.Unlock() // want `may not acquire locks`
	return t
}

// hydratingRoute puts control-plane work under a packet: hydration
// belongs on the miss path behind the shard's single writer, not inline
// in the lookup.
//
//p2p:hotpath
func hydratingRoute(m *manager, src uint32) *tenant {
	t := route(m, src, src)
	if t == nil {
		return nil
	}
	hydrate(t) // want `calls hydrate, which is not annotated`
	return t
}

// keyedRoute allocates a per-packet lookup structure — the lookup must
// index the shared map directly.
//
//p2p:hotpath
func keyedRoute(m *manager, srcs []uint32) []*tenant {
	out := make([]*tenant, 0, len(srcs)) // want `allocates: make`
	for _, s := range srcs {
		out = append(out, route(m, s, s)) // want `calls append`
	}
	return out
}
