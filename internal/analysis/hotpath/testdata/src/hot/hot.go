// Package hot seeds one violation per hotpath rule and one legal use
// per allowance; the golden test asserts the exact diagnostic set.
package hot

import (
	"sync"
	"sync/atomic"
	"time"

	"hotdep"
)

type stats struct {
	mu sync.Mutex
	n  atomic.Int64
}

//p2p:hotpath
func fastLocal(v int64) int64 { return v * 2 }

//p2p:hotpath
func variadicFast(vs ...int64) {}

// ok exercises every allowance: atomic methods, annotated callees in
// this package and across packages, fixed-buffer writes, allowlisted
// stdlib packages, struct-value literals, and a waived append.
//
//p2p:hotpath
func ok(s *stats, buf *[8]byte, scratch []byte, v int64) int64 {
	s.n.Add(v)
	buf[0] = byte(v)
	scratch = scratch[:0]
	scratch = append(scratch, byte(v)) //p2p:bounded caller presizes scratch
	//p2p:bounded caller presizes scratch (standalone waiver on the line above)
	scratch = append(scratch, byte(v))
	_ = stats{}
	var d time.Duration
	_ = d.Seconds()
	variadicFast(nil...)
	return fastLocal(hotdep.Fast(v))
}

func slowLocal() {}

//p2p:hotpath
func locks(s *stats) {
	s.mu.Lock()   // want `may not acquire locks`
	s.mu.Unlock() // want `may not acquire locks`
}

//p2p:hotpath
func clock() int64 {
	return time.Now().UnixNano() // want `calls time.Now`
}

//p2p:hotpath
func allocs(xs []int, str string) {
	xs = append(xs, 1) // want `calls append`
	//p2p:bounded a waiver two lines up does not reach

	xs = append(xs, 2) // want `calls append`
	_ = make([]int, 4) // want `allocates: make`
	_ = new(int)       // want `allocates: new`
	_ = []int{1, 2}    // want `allocates: slice literal`
	_ = map[int]int{}  // want `allocates: map literal`
	_ = &stats{}       // want `composite literal escapes`
	_ = str + "!"      // want `string concatenation`
	_ = []byte(str)    // want `string/byte-slice conversion`
}

//p2p:hotpath
func control() {
	go slowLocal()    // want `starts a goroutine` `calls slowLocal, which is not annotated`
	defer slowLocal() // want `defers a call` `calls slowLocal, which is not annotated`
	f := func() {}    // want `allocates a closure`
	f()
}

//p2p:hotpath
func callees(v int64) {
	slowLocal()        // want `calls slowLocal, which is not annotated`
	hotdep.Slow()      // want `calls hotdep.Slow, which is not annotated`
	variadicFast(v, v) // want `materializes an argument slice`
}

// walker mirrors the ingest mmap decode loop: a hotpath method walking
// a byte mapping with three-index subslices, conditional byte swaps,
// an annotated decode callee, and counter fields — all allowed.
type walker struct {
	data      []byte
	off       int
	swapped   bool
	malformed int64
}

//p2p:hotpath
func (w *walker) u32(off int) uint32 {
	b := w.data[off : off+4 : off+4]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if w.swapped {
		v = v<<24 | v>>24 | v<<8&0x00ff0000 | v>>8&0x0000ff00
	}
	return v
}

//p2p:hotpath
func (w *walker) decode(frame []byte, dst *[8]byte) bool {
	if len(frame) < len(dst) {
		return false
	}
	copy(dst[:], frame)
	return true
}

//p2p:hotpath
func (w *walker) walk(dst [][8]byte) int {
	n := 0
	for n < len(dst) {
		rem := len(w.data) - w.off
		if rem < 16 {
			break
		}
		inclLen := int(w.u32(w.off + 8))
		if inclLen < 0 || rem-16 < inclLen {
			break
		}
		frame := w.data[w.off+16 : w.off+16+inclLen : w.off+16+inclLen]
		w.off += 16 + inclLen
		if !w.decode(frame, &dst[n]) {
			w.malformed++
			continue
		}
		n++
	}
	return n
}

// cloningWalk is the violation the walker exists to avoid: copying each
// frame out of the mapping.
//
//p2p:hotpath
func (w *walker) cloningWalk(frames [][]byte) {
	for _, f := range frames {
		cp := make([]byte, len(f)) // want `allocates: make`
		copy(cp, f)
		_ = append([]byte(nil), f...) // want `calls append`
	}
}

// cold is unannotated: the same constructs draw no diagnostics.
func cold(str string) {
	_ = make([]int, 4)
	_ = str + "!"
	go slowLocal()
}
