// Package replsync fixes the fleet-replication boundary: sync-pump
// code (tick loops, delta broadcast, digest repair) is ordinary Go —
// goroutines, locks, and allocations are all legal off the hot path —
// while the //p2p:hotpath packet path may not call into replication at
// all. The golden test asserts the only diagnostics are the two
// packet-path violations at the bottom.
package replsync

import "sync"

type node struct {
	mu      sync.Mutex
	pending [][]byte
	shadow  []uint64
}

// syncLoop is the replication pump: unannotated, so its goroutine,
// lock, closure, and appends draw no diagnostics.
func syncLoop(n *node, out func([]byte)) {
	go func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		broadcastDelta(n, out)
	}()
}

// broadcastDelta allocates frame buffers freely — it runs on the sync
// goroutine, not under a packet.
func broadcastDelta(n *node, out func([]byte)) {
	frame := make([]byte, 0, 64)
	for _, w := range n.shadow {
		frame = append(frame, byte(w))
	}
	n.pending = append(n.pending, frame)
	out(frame)
}

// digestRepair is likewise free to build repair frames.
func digestRepair(n *node) [][]byte {
	var repairs [][]byte
	for range n.shadow {
		repairs = append(repairs, []byte{0})
	}
	return repairs
}

//p2p:hotpath
func markBit(shadow []uint64, i uint) { shadow[i/64] |= 1 << (i % 64) }

// processPacket is the packet path: replication calls are banned from
// it — a delta broadcast under a packet would put frame encoding and
// transport work on the per-packet budget.
//
//p2p:hotpath
func processPacket(n *node, out func([]byte), bit uint) {
	markBit(n.shadow, bit)
	broadcastDelta(n, out) // want `calls broadcastDelta, which is not annotated`
	syncLoop(n, out)       // want `calls syncLoop, which is not annotated`
}
