// Package offprobe fixes the kernel-offload probe discipline the
// offload package's FastPath relies on: the seqlock reader — atomic
// generation loads, bounded spin on an odd generation, word tests
// against the flat map — is pure arithmetic over a preallocated
// word slice, so the whole probe chain annotates //p2p:hotpath and
// must pass the checks. Publication (the seqlock writer) is
// control-plane code: unannotated, free to allocate shadow scratch,
// and therefore unreachable from a probe. The golden test asserts the
// only diagnostics are the three violations at the bottom.
package offprobe

import (
	"sync"
	"sync/atomic"
)

type flatMap struct {
	words []uint64
	k     int
}

const (
	secGen    = 0
	secCurIdx = 2
	maxSpin   = 64
)

//p2p:hotpath
func loadGen(m *flatMap, base int) uint64 {
	return atomic.LoadUint64(&m.words[base+secGen])
}

// probe is the seqlock read loop: legal because every shared word goes
// through sync/atomic, the spin is bounded, and nothing allocates.
//
//p2p:hotpath
func probe(m *flatMap, base int, bit uint64) bool {
	for spin := 0; spin < maxSpin; spin++ {
		g1 := loadGen(m, base)
		if g1&1 != 0 {
			continue
		}
		cur := atomic.LoadUint64(&m.words[base+secCurIdx])
		if cur >= uint64(m.k) {
			return false // torn geometry: escalate
		}
		w := atomic.LoadUint64(&m.words[base+8+int(bit/64)])
		hit := w&(1<<(bit%64)) != 0
		if loadGen(m, base) == g1 {
			return hit
		}
	}
	return false
}

// tryPush is the miss-ring producer: a fixed ring and two atomics.
//
//p2p:hotpath
func tryPush(ring []uint64, head, tail *uint64, v uint64) bool {
	h := atomic.LoadUint64(head)
	t := atomic.LoadUint64(tail)
	if h-t == uint64(len(ring)) {
		return false
	}
	ring[h&uint64(len(ring)-1)] = v
	atomic.StoreUint64(head, h+1)
	return true
}

// publish is the seqlock writer: control-plane cadence, so the shadow
// scratch allocation is legal here — and only here.
func publish(m *flatMap, base int, dirty []uint64) {
	atomic.StoreUint64(&m.words[base+secGen], loadGen(m, base)+1)
	scratch := make([]uint64, 8)
	for i, w := range dirty {
		scratch[i%8] ^= w
		atomic.StoreUint64(&m.words[base+8+i], scratch[i%8])
	}
	atomic.StoreUint64(&m.words[base+secGen], loadGen(m, base)+1)
}

// probeThenPublish breaks the split: publication under a packet puts
// the writer's allocation and the full dirty-block walk on the
// per-probe budget, and a second writer tears the seqlock.
//
//p2p:hotpath
func probeThenPublish(m *flatMap, base int, bit uint64, dirty []uint64) bool {
	hit := probe(m, base, bit)
	if !hit {
		publish(m, base, dirty) // want `calls publish, which is not annotated`
	}
	return hit
}

// probeAlloc breaks the probe's zero-alloc contract: per-probe scratch
// belongs in the FastPath struct, not on the heap.
//
//p2p:hotpath
func probeAlloc(m *flatMap, base int, bits []uint64) bool {
	sums := make([]uint64, len(bits)) // want `allocates: make`
	for i, b := range bits {
		sums[i] = b
	}
	for _, b := range sums {
		if !probe(m, base, b) {
			return false
		}
	}
	return true
}

// probeLocked breaks the coherence model: the flat map is coherent by
// seqlock, never by mutex — a reader-side lock would stall the packet
// path behind the publisher.
//
//p2p:hotpath
func probeLocked(m *flatMap, mu *sync.Mutex, base int, bit uint64) bool {
	mu.Lock() // want `hotpath functions may not acquire locks`
	return probe(m, base, bit)
}
