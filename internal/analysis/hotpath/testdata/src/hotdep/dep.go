// Package hotdep is the cross-package half of the hotpath fixtures: an
// annotated function whose fact must reach importing packages, and an
// unannotated one that must be reported when called from a hot path.
package hotdep

//p2p:hotpath
func Fast(v int64) int64 { return v + 1 }

func Slow() {}
