// Package hotpath implements the p2pvet analyzer that proves the
// per-packet invariants of functions annotated //p2p:hotpath: no heap
// allocation, no lock acquisition, no wall-clock reads, and a closed
// call graph — every module function a hotpath function statically
// calls must itself be annotated, so the properties hold transitively.
//
// The checked construct set is deliberately explicit (and documented in
// DESIGN.md §11):
//
//   - allocation: make, new, append (unless the line carries a
//     //p2p:bounded waiver backed by a runtime allocation guard), slice
//     and map composite literals, address-taken composite literals,
//     string concatenation, string<->[]byte/[]rune conversions, closures
//     (func literals), go statements, defer, and variadic calls that
//     materialize an argument slice;
//   - locks: any call into package sync (sync/atomic remains allowed);
//   - wall clock: any package-level call into package time (methods on
//     time.Duration values stay allowed — they are pure arithmetic);
//     timestamps must flow through the clamped parameters introduced by
//     the fault-tolerance layer;
//   - calls: a static call to a module function requires the callee to
//     be annotated //p2p:hotpath (same package: checked from the AST;
//     other packages: checked against exported facts). Package-level
//     stdlib calls are restricted to an allowlist (sync/atomic, math,
//     math/bits). Dynamic calls — interface methods and func values —
//     are outside the static contract and are intentionally not
//     reported; the race detector and runtime allocation guards cover
//     them.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"p2pbound/internal/analysis"
)

// Analyzer is the hotpath invariant checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "check that //p2p:hotpath functions do not allocate, lock, read the wall clock, or call unannotated module functions",
	Run:  run,
}

// stdlibCallAllowlist lists the standard-library packages whose
// package-level functions are safe on the packet path: pure arithmetic
// and lock-free atomics.
var stdlibCallAllowlist = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

func run(pass *analysis.Pass) error {
	// Collect this package's annotated functions and export their keys
	// as facts for importing packages.
	annotated := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.HasDirective(fd.Doc, analysis.DirectiveHotpath) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			annotated[fn] = fd
			pass.ExportFact(analysis.FuncKey(fn))
		}
	}
	for fn, fd := range annotated {
		if fd.Body == nil {
			pass.Reportf(fd.Pos(), "hotpath function "+fn.Name()+" has no body; the invariant cannot be checked")
			continue
		}
		c := &checker{pass: pass, annotated: annotated, fn: fn}
		c.bounded = analysis.DirectiveLines(pass.Fset, enclosingFile(pass, fd), analysis.DirectiveBounded)
		ast.Inspect(fd.Body, c.check)
	}
	return nil
}

// enclosingFile returns the *ast.File containing decl.
func enclosingFile(pass *analysis.Pass, decl *ast.FuncDecl) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= decl.Pos() && decl.Pos() < f.FileEnd {
			return f
		}
	}
	return nil
}

// checker walks one hotpath function body.
type checker struct {
	pass      *analysis.Pass
	annotated map[*types.Func]*ast.FuncDecl
	fn        *types.Func
	bounded   map[int]bool
}

func (c *checker) report(pos token.Pos, msg string) {
	c.pass.Reportf(pos, "hotpath function "+c.fn.Name()+" "+msg)
}

func (c *checker) check(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.checkCall(n)
	case *ast.GoStmt:
		c.report(n.Pos(), "starts a goroutine")
	case *ast.DeferStmt:
		c.report(n.Pos(), "defers a call (defer bookkeeping is not free on the packet path)")
	case *ast.FuncLit:
		c.report(n.Pos(), "allocates a closure")
		return false // the literal's body is not part of the static hot path
	case *ast.CompositeLit:
		c.checkCompositeLit(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				c.report(n.Pos(), "allocates: composite literal escapes via &")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && isString(c.pass.TypesInfo.TypeOf(n)) {
			c.report(n.Pos(), "allocates: string concatenation")
		}
	}
	return true
}

// checkCompositeLit flags literals whose backing store is heap-prone:
// slices and maps. Value struct and array literals stay on the stack
// (the escaping &T{} form is reported separately).
func (c *checker) checkCompositeLit(lit *ast.CompositeLit) {
	switch types.Unalias(c.pass.TypesInfo.TypeOf(lit)).Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "allocates: slice literal")
	case *types.Map:
		c.report(lit.Pos(), "allocates: map literal")
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	// Type conversions: only the string<->bytes family allocates.
	if tv, ok := info.Types[unparen(call.Fun)]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if stringBytesConversion(from, to) {
				c.report(call.Pos(), "allocates: string/byte-slice conversion")
			}
		}
		return
	}
	// Builtins.
	if id := calleeIdent(call.Fun); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				// The waiver may sit as a trailing comment on the append's
				// own line or as a standalone comment on the line above —
				// long append expressions (batch scratch fills) don't fit a
				// trailing note.
				line := c.pass.Fset.Position(call.Pos()).Line
				if !c.bounded[line] && !c.bounded[line-1] {
					c.report(call.Pos(), "calls append, which may grow its backing array; prove the capacity bound and annotate the line (or the line above) //p2p:bounded, or write into a fixed buffer")
				}
			case "make":
				c.report(call.Pos(), "allocates: make")
			case "new":
				c.report(call.Pos(), "allocates: new")
			}
			return
		}
	}
	callee := staticCallee(info, call)
	if callee == nil {
		return // dynamic call: interface method or func value — out of static scope
	}
	// Variadic calls materialize their argument slice.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Variadic() && !call.Ellipsis.IsValid() &&
		len(call.Args) >= sig.Params().Len() {
		c.report(call.Pos(), "allocates: variadic call to "+callee.Name()+" materializes an argument slice")
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return // universe-scope methods (error.Error) — dynamic by nature
	}
	path := pkg.Path()
	if c.pass.InModule(path) {
		c.checkModuleCall(call, callee)
		return
	}
	recv := callee.Type().(*types.Signature).Recv()
	switch {
	case path == "sync":
		c.report(call.Pos(), "calls sync."+calleeDisplay(callee)+"; hotpath functions may not acquire locks (use sync/atomic)")
	case recv != nil:
		// Methods on stdlib values (time.Duration arithmetic,
		// binary.LittleEndian, netip.Addr accessors, atomic.Int64) are
		// allowed; the lock-bearing package sync is handled above.
	case path == "time":
		c.report(call.Pos(), "calls time."+callee.Name()+"; timestamps must flow through the clamped packet-time parameters, never the wall clock")
	case !stdlibCallAllowlist[path]:
		c.report(call.Pos(), "calls "+path+"."+callee.Name()+", which is outside the hot-path stdlib allowlist (sync/atomic, math, math/bits)")
	}
}

// checkModuleCall enforces the closed call graph: a module callee must
// itself be annotated //p2p:hotpath.
func (c *checker) checkModuleCall(call *ast.CallExpr, callee *types.Func) {
	if callee.Pkg() == c.pass.Pkg {
		if _, ok := c.annotated[callee]; ok {
			return
		}
		// A method and its value-receiver origin may differ; compare keys.
		for fn := range c.annotated {
			if analysis.FuncKey(fn) == analysis.FuncKey(callee) {
				return
			}
		}
		c.report(call.Pos(), "calls "+callee.Name()+", which is not annotated //p2p:hotpath; annotate it (and satisfy its checks) or move the call off the hot path")
		return
	}
	if c.pass.ImportedFact(analysis.FuncKey(callee)) {
		return
	}
	c.report(call.Pos(), "calls "+callee.Pkg().Path()+"."+calleeDisplay(callee)+", which is not annotated //p2p:hotpath; annotate it (and satisfy its checks) or move the call off the hot path")
}

// calleeIdent returns the identifier of a direct (unqualified) callee,
// or nil when the call expression is qualified or computed.
func calleeIdent(fun ast.Expr) *ast.Ident {
	id, _ := unparen(fun).(*ast.Ident)
	return id
}

// staticCallee resolves the *types.Func a call statically dispatches
// to, or nil for dynamic calls (func values, interface methods).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				if fn != nil && isInterfaceMethod(fn) {
					return nil
				}
				return fn
			}
			return nil // field value call: dynamic
		}
		obj = info.Uses[fun.Sel] // package-qualified function
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isInterfaceMethod reports whether fn is declared on an interface —
// i.e. the call dispatches dynamically.
func isInterfaceMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && types.IsInterface(recv.Type())
}

// calleeDisplay renders a function for a diagnostic: "Name" for
// package-level functions, "(Recv).Name" for methods.
func calleeDisplay(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "(" + types.TypeString(recv.Type(), func(p *types.Package) string { return p.Name() }) + ")." + fn.Name()
	}
	return fn.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringBytesConversion reports whether a conversion between from and to
// crosses the string/[]byte or string/[]rune boundary (both directions
// copy).
func stringBytesConversion(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
