package hotpath_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer}, "hot")
}

// TestHotpathTenantRoute proves the multi-tenant routing discipline
// TenantManager's per-packet lookup relies on: the copy-on-write route
// table keeps the fast path free of locks and allocation, and
// control-plane work (registration, hydration) cannot be called from
// under a packet.
func TestHotpathTenantRoute(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer}, "tenantroute")
}

// TestHotpathReplicationBoundary proves the fleet-sync discipline the
// replica package relies on: unannotated sync-pump code (goroutines,
// locks, frame allocation) is legal, and the //p2p:hotpath packet path
// cannot call into it.
func TestHotpathReplicationBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer}, "replsync")
}

// TestHotpathOffloadProbe proves the kernel-offload probe discipline
// FastPath relies on: the seqlock read loop and the miss-ring producer
// are hot-path clean, while publication (the seqlock writer, with its
// shadow scratch) and any reader-side locking are banned from under a
// probe.
func TestHotpathOffloadProbe(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer}, "offprobe")
}
