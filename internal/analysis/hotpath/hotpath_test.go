package hotpath_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer}, "hot")
}
