package hotpath_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer}, "hot")
}

// TestHotpathReplicationBoundary proves the fleet-sync discipline the
// replica package relies on: unannotated sync-pump code (goroutines,
// locks, frame allocation) is legal, and the //p2p:hotpath packet path
// cannot call into it.
func TestHotpathReplicationBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{hotpath.Analyzer}, "replsync")
}
