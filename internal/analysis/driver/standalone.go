package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"p2pbound/internal/analysis"
)

// listPackage is the subset of `go list -json` output the standalone
// loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Standalone loads the packages matching patterns (plus their full
// dependency closure) via `go list -export -deps -json`, type-checks
// every module package from source, runs the analyzer suite in
// dependency order with facts flowing in memory, and prints diagnostics
// to stderr. It returns the process exit code: 0 clean, 1 diagnostics
// or load failure.
func Standalone(stderr io.Writer, patterns []string, analyzers []*analysis.Analyzer) int {
	diags, err := Load(patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "p2pvet:", err)
		return 1
	}
	PrintDiagnostics(stderr, diags)
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// Load performs the standalone analysis and returns the diagnostics for
// the packages matching patterns (dependencies are analyzed for facts
// but their diagnostics are reported too — in a single module every
// dependency is equally ours).
func Load(patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exportFiles := make(map[string]string) // package path -> export data file
	for _, p := range pkgs {
		if p.Export != "" {
			exportFiles[p.ImportPath] = p.Export
		}
	}
	gcImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, errors.New("no export data for " + strconv.Quote(path))
		}
		return os.Open(file)
	})

	checked := make(map[string]*types.Package) // module packages, from source
	factsOut := make(map[string]FactSet)       // package path -> transitive fact closure
	var diags []Diagnostic

	// `go list -deps` emits dependencies before dependents, so every
	// import of the current package has already been processed.
	for _, p := range pkgs {
		if p.Standard || p.Name == "" {
			continue
		}
		if p.Error != nil {
			return nil, errors.New(p.ImportPath + ": " + p.Error.Err)
		}
		module := ""
		if p.Module != nil {
			module = p.Module.Path
		}

		files, err := parsePackage(fset, p)
		if err != nil {
			return nil, err
		}
		pkg, info, err := checkPackage(fset, p, files, checked, gcImporter)
		if err != nil {
			return nil, err
		}
		checked[p.ImportPath] = pkg

		imported := NewFactSet()
		for _, imp := range p.Imports {
			if fs, ok := factsOut[resolveImport(p, imp)]; ok {
				imported.Merge(fs)
			}
		}
		isStandard := func(path string) bool {
			_, fromSource := checked[path]
			return !fromSource && path != p.ImportPath
		}
		pdiags, exported, err := RunPackage(analyzers, fset, files, pkg, info, module, imported, isStandard)
		if err != nil {
			return nil, errors.New(p.ImportPath + ": " + err.Error())
		}
		diags = append(diags, pdiags...)
		imported.Merge(exported)
		factsOut[p.ImportPath] = imported
	}
	return diags, nil
}

// goList runs `go list -export -deps -json` over the patterns and
// decodes the JSON stream (dependency order preserved).
func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderrBuf bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderrBuf
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderrBuf.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, errors.New("go list failed: " + msg)
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, errors.New("go list output: " + err.Error())
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func parsePackage(fset *token.FileSet, p *listPackage) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkPackage type-checks one module package from source. Imports of
// other module packages resolve to their freshly checked *types.Package
// (dependency order guarantees availability); standard-library imports
// resolve through gc export data.
func checkPackage(fset *token.FileSet, p *listPackage, files []*ast.File,
	checked map[string]*types.Package, gcImporter types.Importer) (*types.Package, *types.Info, error) {

	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path := resolveImport(p, importPath)
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return gcImporter.Import(path)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := newTypesInfo()
	pkg, err := tc.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, errors.New("typecheck " + p.ImportPath + ": " + err.Error())
	}
	return pkg, info, nil
}

// resolveImport applies the package's vendor/import map to a source
// import path.
func resolveImport(p *listPackage, importPath string) string {
	if mapped, ok := p.ImportMap[importPath]; ok {
		return mapped
	}
	return importPath
}
