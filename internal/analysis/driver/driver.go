// Package driver executes the p2pvet analyzer suite. It provides two
// entry points sharing one per-package runner:
//
//   - Standalone loads the module with `go list -export -deps -json`,
//     type-checks module packages from source (standard-library
//     dependencies come from compiler export data), and runs the
//     analyzers in dependency order with facts flowing in memory. This
//     backs `go run ./cmd/p2pvet ./...` and `make lint`.
//
//   - Vet analyzes the single compilation unit described by a go vet
//     *.cfg file, speaking the `go vet -vettool` build-system protocol:
//     types come from the export data files the build supplies, facts
//     are read from the PackageVetx files of direct dependencies and
//     written (transitively merged) to VetxOutput, and diagnostics are
//     suppressed in VetxOnly mode. This backs
//     `go vet -vettool=$(which p2pvet) ./...` with full build caching.
//
// Facts are serialized as deterministic JSON: analyzer name to sorted
// fact-key list. The files are opaque to the go command — it only moves
// them between vet runs — so the format is ours to choose, and JSON
// keeps them inspectable when debugging a cross-package diagnostic.
package driver

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"p2pbound/internal/analysis"
)

// A Diagnostic is one finding with its position resolved, ready to
// print or compare.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

// A FactSet is the fact keys exported per analyzer. The driver treats
// keys as opaque.
type FactSet map[string]map[string]bool

// NewFactSet returns an empty fact set.
func NewFactSet() FactSet { return make(FactSet) }

// Add records one key for one analyzer.
func (fs FactSet) Add(analyzer, key string) {
	m := fs[analyzer]
	if m == nil {
		m = make(map[string]bool)
		fs[analyzer] = m
	}
	m[key] = true
}

// Merge adds every fact of src into fs.
func (fs FactSet) Merge(src FactSet) {
	for a, keys := range src {
		for k := range keys {
			fs.Add(a, k)
		}
	}
}

// Encode renders the set as deterministic JSON (analyzers and keys
// sorted), suitable for content-addressed build caching.
func (fs FactSet) Encode() ([]byte, error) {
	out := make(map[string][]string, len(fs))
	for a, keys := range fs {
		list := make([]string, 0, len(keys))
		for k := range keys {
			list = append(list, k)
		}
		sort.Strings(list)
		out[a] = list
	}
	return json.Marshal(out) // encoding/json sorts map keys
}

// DecodeFactSet parses Encode's output. Unknown analyzers are kept:
// fact files may outlive analyzer renames within a cached build.
func DecodeFactSet(data []byte) (FactSet, error) {
	var raw map[string][]string
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, err
	}
	fs := NewFactSet()
	for a, keys := range raw {
		for _, k := range keys {
			fs.Add(a, k)
		}
	}
	return fs, nil
}

// RunPackage executes every analyzer over one type-checked package.
// imported carries the merged facts of the package's (transitive)
// dependencies; the returned FactSet holds only the facts exported by
// this package's passes. isStandard may be nil (heuristic fallback).
func RunPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, module string, imported FactSet,
	isStandard func(string) bool) ([]Diagnostic, FactSet, error) {

	var diags []Diagnostic
	exported := NewFactSet()
	for _, a := range analyzers {
		a := a
		pass := analysis.NewPass(a, fset, files, pkg, info, module,
			func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Position: fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			},
			imported[a.Name],
			func(key string) { exported.Add(a.Name, key) },
			isStandard,
		)
		if err := a.Run(pass); err != nil {
			return diags, exported, err
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Message < b.Message
	})
	return diags, exported, nil
}

// newTypesInfo allocates the types.Info maps the analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// String renders a diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return d.Position.String() + ": " + d.Message + " (" + d.Analyzer + ")"
}

// PrintDiagnostics renders diagnostics to w in the shared
// file:line:col format, shortening absolute paths to cwd-relative ones
// when that is shorter. Both drivers print through it, so standalone
// and -vettool output stay byte-compatible for the same finding.
func PrintDiagnostics(w io.Writer, diags []Diagnostic) {
	cwd, _ := os.Getwd()
	for _, d := range diags {
		d.Position.Filename = relPath(cwd, d.Position.Filename)
		io.WriteString(w, d.String()+"\n")
	}
}

// relPath shortens abs to a cwd-relative path when that is shorter.
func relPath(cwd, abs string) string {
	if cwd == "" {
		return abs
	}
	if rel, err := filepath.Rel(cwd, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return abs
}
