package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"p2pbound/internal/analysis"
)

// vetConfig mirrors the JSON compilation-unit description the go
// command writes for `go vet -vettool` tools (cmd/go/internal/work's
// vetConfig). Only the fields this driver consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Vet analyzes the single compilation unit described by configFile and
// returns the process exit code: 0 on success (including VetxOnly runs
// and tolerated type-check failures), 1 when diagnostics were reported
// or the unit could not be processed.
func Vet(stderr io.Writer, configFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readVetConfig(configFile)
	if err != nil {
		fmt.Fprintln(stderr, "p2pvet:", err)
		return 1
	}

	fset := token.NewFileSet()
	parsed, err := parseUnit(fset, cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "p2pvet:", err)
		return 1
	}

	pkg, info, err := checkUnit(fset, cfg, parsed)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "p2pvet: typecheck of", cfg.ImportPath, "failed:", err)
		return 1
	}

	// Facts: the go command hands us one vetx file per direct
	// dependency; each already contains that dependency's transitive
	// fact closure, so merging the direct files yields the full view. A
	// missing or corrupt fact file is a hard error: silently narrowing
	// the fact view would let cross-package violations pass the gate.
	imported := NewFactSet()
	deps := make([]string, 0, len(cfg.PackageVetx))
	for dep := range cfg.PackageVetx {
		deps = append(deps, dep)
	}
	sort.Strings(deps)
	for _, dep := range deps {
		file := cfg.PackageVetx[dep]
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(stderr, "p2pvet: reading facts of", dep+":", err)
			return 1
		}
		fs, err := DecodeFactSet(data)
		if err != nil {
			fmt.Fprintln(stderr, "p2pvet: decoding facts of", dep, "("+file+"):", err)
			return 1
		}
		imported.Merge(fs)
	}

	isStandard := func(path string) bool {
		if cfg.Standard[path] {
			return true
		}
		// The unit's own path is absent from Standard (the map covers
		// dependencies only); a unit with no module is the standard
		// library being vetted for facts.
		return cfg.ModulePath == "" && path == cfg.ImportPath
	}

	diags, exported, err := RunPackage(analyzers, fset, parsed, pkg, info, cfg.ModulePath, imported, isStandard)
	if err != nil {
		fmt.Fprintln(stderr, "p2pvet:", err)
		return 1
	}

	// The vetx output must carry the transitive closure: downstream
	// units only receive the files of their direct dependencies.
	imported.Merge(exported)
	if cfg.VetxOutput != "" {
		if data, err := imported.Encode(); err == nil {
			_ = os.WriteFile(cfg.VetxOutput, data, 0o666)
		}
	}

	if cfg.VetxOnly {
		return 0
	}
	PrintDiagnostics(stderr, diags)
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func readVetConfig(configFile string) (*vetConfig, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", configFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no Go files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

func parseUnit(fset *token.FileSet, cfg *vetConfig) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkUnit type-checks the unit against the export data files the
// build system supplied in PackageFile, resolving source import paths
// through ImportMap exactly as the compiler did.
func checkUnit(fset *token.FileSet, cfg *vetConfig, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, compilerName(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: sanitizeGoVersion(cfg.GoVersion),
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// compilerName defaults to gc; the build always fills Compiler, but the
// importer would otherwise panic on "".
func compilerName(name string) string {
	if name == "" {
		return "gc"
	}
	return name
}

// sanitizeGoVersion guards against version strings go/types rejects
// (empty is allowed and means "latest").
func sanitizeGoVersion(v string) string {
	if v == "" || strings.HasPrefix(v, "go") {
		return v
	}
	return ""
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Handshake prints the -V=full build-identity line the go command uses
// for build caching: tool name, the literal "version devel" marker, and
// a buildID derived from the executable's own content hash, so editing
// and rebuilding p2pvet invalidates previously cached vet results.
func Handshake(stdout io.Writer, progname string) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%x\n", progname, h.Sum(nil))
	return nil
}
