// Package analysistest runs p2pvet analyzers over fixture packages and
// checks their diagnostics against // want "regex" comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (which this
// module cannot depend on).
//
// Fixtures live under <dir>/src/<importpath>/ — one directory per
// package, named by its import path. A fixture may import another
// fixture (resolved from the same tree, analyzed first so cross-package
// facts flow) or the standard library (type-checked from GOROOT
// source). Every fixture file may carry expectations:
//
//	bad()        // want "regex matched against the diagnostic message"
//	worse()      // want "first" "second"
//
// Each want must be matched by a diagnostic reported on the same line,
// and each diagnostic must match a want; any excess of either fails the
// test with a precise file:line account.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/driver"
)

// Run analyzes the fixture package at dir/src/<pkgpath> (and,
// transitively, every fixture package it imports) with the given
// analyzers and asserts the diagnostics match the fixtures' want
// comments exactly.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgpath string) {
	t.Helper()
	h := &harness{
		t:         t,
		root:      filepath.Join(dir, "src"),
		fset:      token.NewFileSet(),
		analyzers: analyzers,
		loaded:    make(map[string]*fixture),
	}
	h.stdlib = importer.ForCompiler(h.fset, "source", nil)
	h.load(pkgpath)

	var diags []driver.Diagnostic
	var files []*ast.File
	// Deterministic order: fixtures sorted by import path.
	paths := make([]string, 0, len(h.loaded))
	for p := range h.loaded {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f := h.loaded[p]
		diags = append(diags, f.diags...)
		files = append(files, f.files...)
	}
	checkWants(t, h.fset, files, diags)
}

// fixture is one analyzed fixture package.
type fixture struct {
	pkg   *types.Package
	files []*ast.File
	facts driver.FactSet // transitive: imported ∪ exported
	diags []driver.Diagnostic
}

type harness struct {
	t         *testing.T
	root      string
	fset      *token.FileSet
	analyzers []*analysis.Analyzer
	stdlib    types.Importer
	loaded    map[string]*fixture
	loading   []string // DFS stack for cycle reporting
}

// isFixture reports whether path names a fixture directory.
func (h *harness) isFixture(path string) bool {
	fi, err := os.Stat(filepath.Join(h.root, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

// load parses, type-checks, and analyzes one fixture package,
// memoizing the result. Fixture imports are loaded first so their
// exported facts are visible.
func (h *harness) load(path string) *fixture {
	h.t.Helper()
	if f, ok := h.loaded[path]; ok {
		return f
	}
	for _, p := range h.loading {
		if p == path {
			h.t.Fatalf("fixture import cycle: %s", strings.Join(append(h.loading, path), " -> "))
		}
	}
	h.loading = append(h.loading, path)
	defer func() { h.loading = h.loading[:len(h.loading)-1] }()

	dir := filepath.Join(h.root, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		h.t.Fatalf("fixture %s: no Go files in %s", path, dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		file, err := parser.ParseFile(h.fset, name, nil, parser.ParseComments)
		if err != nil {
			h.t.Fatalf("fixture %s: %v", path, err)
		}
		files = append(files, file)
	}

	// Resolve imports: fixture packages from the tree (analyzed first),
	// everything else from GOROOT source.
	imported := driver.NewFactSet()
	imp := importerFunc(func(ipath string) (*types.Package, error) {
		if ipath == "unsafe" {
			return types.Unsafe, nil
		}
		if h.isFixture(ipath) {
			dep := h.load(ipath)
			imported.Merge(dep.facts)
			return dep.pkg, nil
		}
		return h.stdlib.Import(ipath)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, h.fset, files, info)
	if err != nil {
		h.t.Fatalf("fixture %s: typecheck: %v", path, err)
	}

	isStandard := func(p string) bool { return !h.isFixture(p) }
	diags, exported, err := driver.RunPackage(h.analyzers, h.fset, files, pkg, info, "", imported, isStandard)
	if err != nil {
		h.t.Fatalf("fixture %s: analyze: %v", path, err)
	}
	facts := driver.NewFactSet()
	facts.Merge(imported)
	facts.Merge(exported)
	f := &fixture{pkg: pkg, files: files, facts: facts, diags: diags}
	h.loaded[path] = f
	return f
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of a want comment. Both "double"
// and `backquoted` Go string syntax are accepted.
var wantRE = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// checkWants compares diagnostics against the want comments of files
// and reports every mismatch in both directions.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []driver.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				// A want may be the whole comment or trail another
				// marker on the same line ("//p2p:atomic // want ...").
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				text := c.Text[i+len("// want "):]
				pos := fset.Position(c.Pos())
				for _, lit := range wantRE.FindAllString(text, -1) {
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, lit, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: pattern, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}
