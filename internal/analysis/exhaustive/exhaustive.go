// Package exhaustive implements the p2pvet analyzer that keeps switches
// over the module's enum-like types total: when a new ShedPolicy,
// Verdict, or Decision constant is added, every switch that dispatches
// on the type must either gain a case or already carry a default.
//
// A type is enum-like when it is a named type declared in this module
// whose underlying type is an integer and for which the declaring
// package declares at least two package-level constants of exactly that
// type (the iota block pattern). The declaring package exports one fact
// per constant, so switches in importing packages are checked against
// the full constant set even though export data has already erased the
// declaration grouping.
package exhaustive

import (
	"go/ast"
	"go/types"
	"strings"

	"p2pbound/internal/analysis"
)

// Analyzer is the enum-switch totality checker.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc:  "check that switches over module enum types cover every declared constant or have a default",
	Run:  run,
}

// factPrefix namespaces the exported constant facts:
// "enumconst\x00<typeKey>\x00<constName>".
const factPrefix = "enumconst\x00"

func enumConstFact(typeKey, constName string) string {
	return factPrefix + typeKey + "\x00" + constName
}

// typeKey identifies an enum type across packages: "<pkgpath>.<Name>".
func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func run(pass *analysis.Pass) error {
	// Phase 1: find enum types declared in this package and the constant
	// sets belonging to them, then export them as facts.
	enums := collectEnums(pass.Pkg)
	for key, consts := range enums {
		for name := range consts {
			pass.ExportFact(enumConstFact(key, name))
		}
	}

	// Phase 2: check every switch statement in non-test files.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, enums, sw)
			return true
		})
	}
	return nil
}

// collectEnums scans a package's scope for enum-like types: named
// integer types with >= 2 package-level constants of that exact type.
// The result maps type keys to their constant name sets.
func collectEnums(pkg *types.Package) map[string]map[string]bool {
	enums := make(map[string]map[string]bool)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := types.Unalias(c.Type()).(*types.Named)
		if !ok || named.Obj().Pkg() != pkg {
			continue
		}
		b, ok := named.Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsInteger == 0 {
			continue
		}
		key := typeKey(named)
		if enums[key] == nil {
			enums[key] = make(map[string]bool)
		}
		enums[key][c.Name()] = true
	}
	for key, consts := range enums {
		if len(consts) < 2 {
			delete(enums, key) // a single constant is a sentinel, not an enum
		}
	}
	return enums
}

// checkSwitch verifies one tagged switch. Switches with a default are
// total by construction and always pass.
func checkSwitch(pass *analysis.Pass, localEnums map[string]map[string]bool, sw *ast.SwitchStmt) {
	tagType := pass.TypesInfo.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	if !pass.InModule(named.Obj().Pkg().Path()) {
		return // only the module's own enums carry the contract
	}
	key := typeKey(named)

	// The full constant set: from the local scan when the type is
	// declared here, otherwise reconstructed from imported facts plus
	// the declaring package's scope (for names).
	want := localEnums[key]
	if want == nil {
		want = importedEnum(pass, named, key)
	}
	if len(want) < 2 {
		return // not an enum by our definition
	}

	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			if c := constOf(pass.TypesInfo, e); c != nil {
				covered[c.Name()] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for name := range want {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sortStrings(missing)
	pass.Reportf(sw.Pos(), "switch over "+key+" is missing cases for "+strings.Join(missing, ", ")+" and has no default")
}

// importedEnum reconstructs the constant set of an enum declared in an
// imported package: the declaring package's scope supplies the candidate
// constant names (visible through export data) and the fact stream
// confirms each one was part of the exported enum.
func importedEnum(pass *analysis.Pass, named *types.Named, key string) map[string]bool {
	pkg := named.Obj().Pkg()
	want := make(map[string]bool)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if n, ok := types.Unalias(c.Type()).(*types.Named); !ok || n.Obj() != named.Obj() {
			continue
		}
		if pass.ImportedFact(enumConstFact(key, c.Name())) {
			want[c.Name()] = true
		}
	}
	return want
}

// constOf resolves a case expression to the *types.Const it names, or
// nil for non-constant or computed expressions.
func constOf(info *types.Info, e ast.Expr) *types.Const {
	switch e := e.(type) {
	case *ast.Ident:
		c, _ := info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[e.Sel].(*types.Const)
		return c
	case *ast.ParenExpr:
		return constOf(info, e.X)
	}
	return nil
}

// sortStrings is an insertion sort; missing-case lists are tiny and the
// framework takes no sort dependency for one call.
func sortStrings(x []string) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
