// Package exhtest seeds the enum-switch totality rules for a locally
// declared enum.
package exhtest

// Mode is enum-like: a named integer type with >= 2 typed constants.
type Mode int

// Modes.
const (
	ModeA Mode = iota
	ModeB
	ModeC
)

// single has one constant only: a sentinel, not an enum.
type single int

const onlyOne single = 0

func full(m Mode) string {
	switch m {
	case ModeA:
		return "a"
	case ModeB:
		return "b"
	case ModeC:
		return "c"
	}
	return ""
}

func defaulted(m Mode) string {
	switch m {
	case ModeA:
		return "a"
	default:
		return "?"
	}
}

func missing(m Mode) string {
	switch m { // want `switch over exhtest.Mode is missing cases for ModeB, ModeC and has no default`
	case ModeA:
		return "a"
	}
	return ""
}

func multi(m Mode) string {
	switch m { // want `missing cases for ModeC`
	case ModeA, ModeB:
		return "ab"
	}
	return ""
}

// notEnum: switches over sentinels and non-module types are ignored.
func notEnum(s single, n int) {
	switch s {
	case onlyOne:
	}
	switch n {
	case 0:
	}
}
