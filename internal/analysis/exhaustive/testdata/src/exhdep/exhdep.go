// Package exhdep declares an enum consumed by package exhuser; the
// constant set travels as exported facts.
package exhdep

// Policy is an enum-like type switched on across packages.
type Policy int

// Policies.
const (
	Block Policy = iota
	FailOpen
	FailClosed
)
