// Package exhuser switches over an enum declared in package exhdep,
// exercising the fact-driven cross-package constant set.
package exhuser

import "exhdep"

func full(p exhdep.Policy) string {
	switch p {
	case exhdep.Block:
		return "block"
	case exhdep.FailOpen:
		return "open"
	case exhdep.FailClosed:
		return "closed"
	}
	return ""
}

func missing(p exhdep.Policy) string {
	switch p { // want `switch over exhdep.Policy is missing cases for FailClosed and has no default`
	case exhdep.Block, exhdep.FailOpen:
		return "known"
	}
	return ""
}
