package exhaustive_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/exhaustive"
)

func TestExhaustiveLocal(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{exhaustive.Analyzer}, "exhtest")
}

func TestExhaustiveCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{exhaustive.Analyzer}, "exhuser")
}
