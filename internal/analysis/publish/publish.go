// Package publish implements the p2pvet analyzer that proves the
// immutable-after-publish discipline of atomic.Pointer and atomic.Value
// publication: a value handed to .Store (or .Swap, or the new-value
// argument of .CompareAndSwap) must be fully constructed before the
// store and never written again through any alias the storing function
// retains. This is the static form of the restore-race bug class the
// fleet PR defends dynamically (TestRestoreRacesProcessing): a reader
// that Loads the pointer between two post-publish writes observes a
// half-updated value without any happens-before edge.
//
// The check is function-local and lexical: within the function
// containing the Store, the analyzer collects the reference-carrying
// identifiers that alias the published value — the stored identifier
// itself, every reference-typed identifier captured inside a stored
// &T{...} composite literal, the operand of a stored &x, and the
// closure of local assignments flowing those values into further
// identifiers — and reports any write through them (field or element
// assignment, ++/--, delete, or copy into) positioned after the store.
// Mutations reached through separate functions, loops that re-enter the
// store textually, or aliases smuggled through the heap are out of
// scope; the race detector covers those schedules dynamically.
package publish

import (
	"go/ast"
	"go/token"
	"go/types"

	"p2pbound/internal/analysis"
)

// Analyzer is the atomic-publication discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "publish",
	Doc:  "check that values stored into atomic.Pointer/atomic.Value are never mutated after publication",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// store is one publication site within a function.
type store struct {
	call *ast.CallExpr
	recv string                // "Pointer" or "Value", for diagnostics
	end  token.Pos             // writes positioned after this are post-publish
	set  map[types.Object]bool // identifiers aliasing the published value
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: find the publication calls and their root aliases.
	var stores []*store
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, arg := publication(info, call)
		if recv == "" || arg == nil {
			return true
		}
		s := &store{call: call, recv: recv, end: call.End(), set: make(map[types.Object]bool)}
		collectRoots(info, arg, s.set)
		if len(s.set) > 0 {
			stores = append(stores, s)
		}
		return true
	})
	if len(stores) == 0 {
		return
	}

	// Pass 2: close each alias set over local assignments. An assignment
	// anywhere in the function whose right-hand side is rooted at a
	// tracked identifier and yields a reference type extends the set;
	// iterate to a fixed point (alias chains are short).
	for _, s := range stores {
		for changed := true; changed; {
			changed = false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					id, ok := as.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil || s.set[obj] {
						continue
					}
					if root := rootIdent(rhs); root != nil && s.set[objectOf(info, root)] && isReference(info.TypeOf(rhs)) {
						s.set[obj] = true
						changed = true
					}
				}
				return true
			})
		}
	}

	// Pass 3: report writes through tracked aliases positioned after the
	// store.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, stores, info, lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(pass, stores, info, n.X, n.Pos())
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && len(n.Args) > 0 {
					switch b.Name() {
					case "delete", "copy":
						if root := rootIdent(n.Args[0]); root != nil {
							reportIfTracked(pass, stores, info, root, n.Pos(), "passes "+root.Name+" to "+b.Name())
						}
					}
				}
			}
		}
		return true
	})
}

// checkWrite reports a post-publish mutation when the write target is a
// field, element, or dereference rooted at a tracked identifier. A bare
// identifier on the left rebinds the variable rather than mutating the
// published memory, so it is not a write.
func checkWrite(pass *analysis.Pass, stores []*store, info *types.Info, target ast.Expr, pos token.Pos) {
	switch unparen(target).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	root := rootIdent(target)
	if root == nil {
		return
	}
	reportIfTracked(pass, stores, info, root, pos, "writes through "+root.Name)
}

func reportIfTracked(pass *analysis.Pass, stores []*store, info *types.Info, root *ast.Ident, pos token.Pos, action string) {
	obj := objectOf(info, root)
	if obj == nil {
		return
	}
	for _, s := range stores {
		if pos > s.end && s.set[obj] {
			pass.Reportf(pos, action+" after it was published via atomic."+s.recv+"; published values must be immutable — finish construction before the Store, or build and publish a fresh copy")
			return
		}
	}
}

// publication reports whether call is an atomic.Pointer/atomic.Value
// publication and returns the published-value argument: Store and Swap
// publish argument 0, CompareAndSwap publishes its new value
// (argument 1).
func publication(info *types.Info, call *ast.CallExpr) (recv string, arg ast.Expr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", nil
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok {
		return "", nil
	}
	t := s.Recv()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", nil
	}
	name := obj.Name()
	if name != "Pointer" && name != "Value" {
		return "", nil
	}
	switch fn.Name() {
	case "Store", "Swap":
		if len(call.Args) >= 1 {
			return name, call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) >= 2 {
			return name, call.Args[1]
		}
	}
	return "", nil
}

// collectRoots gathers the reference-carrying identifiers through which
// the published value's memory remains reachable in the storing
// function: the stored identifier itself, the operand of a stored &x,
// and every reference-typed identifier mentioned inside a stored
// composite literal (whose referents the published value now retains).
func collectRoots(info *types.Info, arg ast.Expr, set map[types.Object]bool) {
	switch e := unparen(arg).(type) {
	case *ast.Ident:
		if obj := objectOf(info, e); obj != nil && isReference(info.TypeOf(e)) {
			set[obj] = true
		}
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return
		}
		switch x := unparen(e.X).(type) {
		case *ast.Ident:
			// &x: the published pointer aliases the local directly.
			if obj := objectOf(info, x); obj != nil {
				set[obj] = true
			}
		case *ast.CompositeLit:
			collectCompositeRoots(info, x, set)
		}
	case *ast.CompositeLit:
		// atomic.Value may store a struct value whose reference fields
		// still alias locals.
		collectCompositeRoots(info, e, set)
	}
}

func collectCompositeRoots(info *types.Info, lit *ast.CompositeLit, set map[types.Object]bool) {
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if v, ok := obj.(*types.Var); ok && !v.IsField() && isReference(v.Type()) {
			set[obj] = true
		}
		return true
	})
}

// rootIdent returns the base identifier of a selector/index/dereference
// chain, or nil when the expression is not rooted at an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isReference reports whether values of type t carry references to
// shared memory (so retaining one retains the published value's state).
func isReference(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Interface:
		return true
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
