package publish_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/publish"
)

func TestPublish(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{publish.Analyzer}, "pubtest")
}
