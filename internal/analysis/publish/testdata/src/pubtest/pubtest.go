// Package pubtest exercises the publish analyzer: values handed to
// atomic.Pointer/atomic.Value Store (and the new-value argument of
// CompareAndSwap) must be fully constructed before publication and
// never written again through a retained alias.
package pubtest

import "sync/atomic"

type table struct {
	byKey map[uint32]int
	n     int
}

type server struct {
	routes atomic.Pointer[table]
	val    atomic.Value
}

// good finishes construction before the Store: every write precedes
// publication.
func good(s *server) {
	t := &table{byKey: make(map[uint32]int)}
	t.byKey[1] = 1
	t.n = 1
	s.routes.Store(t)
}

// goodFresh republishes by building a new value instead of mutating the
// published one.
func goodFresh(s *server) {
	t := &table{}
	t.n = 1
	s.routes.Store(t)
	fresh := &table{n: 2}
	s.routes.Store(fresh)
}

// bad mutates the published value through the stored identifier.
func bad(s *server) {
	t := &table{byKey: make(map[uint32]int)}
	s.routes.Store(t)
	t.n = 2        // want `writes through t after it was published via atomic\.Pointer`
	t.byKey[1] = 2 // want `writes through t after it was published via atomic\.Pointer`
}

// badAlias mutates the published value through a second name bound to
// the same pointer.
func badAlias(s *server) {
	t := &table{}
	u := t
	s.routes.Store(t)
	u.n = 3 // want `writes through u after it was published via atomic\.Pointer`
}

// badComposite stores a literal that captures a map; the map is part of
// the published value, so writing it afterwards is a post-publish
// mutation even though the literal itself was never named.
func badComposite(s *server, m map[uint32]int) {
	s.routes.Store(&table{byKey: m})
	m[1] = 9 // want `writes through m after it was published via atomic\.Pointer`
}

// badDelete reaches the published map through a builtin instead of an
// assignment.
func badDelete(s *server, m map[uint32]int) {
	s.routes.Store(&table{byKey: m})
	delete(m, 1) // want `passes m to delete after it was published via atomic\.Pointer`
}

// badValue publishes through atomic.Value; the discipline is the same.
func badValue(s *server) {
	cfg := &table{}
	s.val.Store(cfg)
	cfg.n = 1 // want `writes through cfg after it was published via atomic\.Value`
}

// badCAS publishes via CompareAndSwap: the new value (argument 1) is
// the published one.
func badCAS(s *server) {
	old := s.routes.Load()
	next := &table{}
	if s.routes.CompareAndSwap(old, next) {
		next.n = 1 // want `writes through next after it was published via atomic\.Pointer`
	}
}

// goodIncDec increments through an alias before the store; only
// post-publish mutations are reported.
func goodIncDec(s *server) {
	t := &table{}
	t.n++
	s.routes.Store(t)
}
