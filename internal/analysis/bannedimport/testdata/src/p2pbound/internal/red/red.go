// Package red mirrors the real packet-path package's import path; both
// fmt and time are banned here.
package red

import (
	"errors"  // allowed
	"fmt"     // want `may not import fmt`
	"strconv" // allowed
	"time"    // want `may not import time`
)

var (
	_ = errors.New
	_ = fmt.Sprint
	_ = strconv.Itoa
	_ = time.Now
)
