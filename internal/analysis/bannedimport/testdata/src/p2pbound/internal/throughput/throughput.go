// Package throughput mirrors a clamp-owner package: time is allowed
// (it owns timestamp clamping), heap-happy packages are not.
package throughput

import (
	"encoding/json" // want `may not import encoding/json`
	"time"          // allowed: clamp owner
)

var (
	_ = json.Marshal
	_ = time.Duration(0)
)
