// Package core mirrors the filter package: a clamp owner (time
// allowed) that must stay free of heap-happy imports.
package core

import (
	"fmt" // want `may not import fmt`
	"sync/atomic"
	"time" // allowed: clamp owner
)

var (
	_ = fmt.Sprint
	_ = atomic.LoadInt64
	_ = time.Duration(0)
)
