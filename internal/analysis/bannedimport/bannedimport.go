// Package bannedimport implements the p2pvet analyzer that keeps the
// packet-path packages lean: packages holding per-packet code may not
// import fmt, time, or other heap-happy or syscall-bearing standard
// library packages.
//
// The policy is positional, not annotation-based: the banned set is
// keyed by package path suffix under the module, so the contract is
// visible in one table rather than scattered across files. Error paths
// in these packages use errors.New and strconv instead of fmt.Errorf;
// time handling is confined to the clamp owners (internal/core and
// internal/throughput take a raw timestamp once per call and clamp it —
// they may import time for the Duration/Time types) while the leaf
// packages internal/bitvec and internal/red must stay time-free.
package bannedimport

import (
	"strconv"
	"strings"

	"p2pbound/internal/analysis"
)

// Analyzer is the import-policy checker.
var Analyzer = &analysis.Analyzer{
	Name: "bannedimport",
	Doc:  "check that packet-path packages do not import fmt, time, or other heap-happy stdlib packages",
	Run:  run,
}

// heapHappy lists the stdlib packages banned from every packet-path
// package: formatting and reflection machinery that allocates on every
// call, process-global registries, and I/O stacks that have no business
// on a per-packet code path.
var heapHappy = []string{
	"fmt",
	"log",
	"log/slog",
	"os",
	"net",
	"net/http",
	"encoding/json",
	"reflect",
	"expvar",
	"runtime/pprof",
	"runtime/trace",
}

// policies maps module-relative package path suffixes to their banned
// import lists. "time" appears only for the leaf packages; internal/core
// and internal/throughput are the designated clamp owners and legally
// use time.Duration in their configuration surface.
var policies = map[string][]string{
	"internal/core":       heapHappy,
	"internal/bitvec":     append([]string{"time"}, heapHappy...),
	"internal/red":        append([]string{"time"}, heapHappy...),
	"internal/throughput": heapHappy,
}

func run(pass *analysis.Pass) error {
	banned := policyFor(pass)
	if banned == nil {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue // tests may format failures however they like
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, b := range banned {
				if path == b {
					pass.Reportf(imp.Pos(), "package "+pass.Pkg.Path()+" is a packet-path package and may not import "+path+reason(path))
				}
			}
		}
	}
	return nil
}

// policyFor returns the banned list applying to the package under
// analysis, or nil when the package is unrestricted. Only module
// packages are in scope: the suffix match must never catch a
// standard-library package that happens to share a layout (the vet
// build system runs this analyzer over the whole stdlib dependency
// closure for facts).
func policyFor(pass *analysis.Pass) []string {
	path := pass.Pkg.Path()
	if !pass.InModule(path) {
		return nil
	}
	for suffix, banned := range policies {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return banned
		}
	}
	return nil
}

// reason appends the rationale for the most commonly hit bans.
func reason(path string) string {
	switch path {
	case "fmt":
		return " (fmt allocates on every call; build errors with errors.New and strconv)"
	case "time":
		return " (leaf packet-path packages are time-free; timestamps arrive pre-clamped from internal/core)"
	default:
		return ""
	}
}
