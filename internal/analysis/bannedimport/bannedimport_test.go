package bannedimport_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/bannedimport"
)

func TestBannedImport(t *testing.T) {
	for _, pkg := range []string{
		"p2pbound/internal/red",
		"p2pbound/internal/throughput",
		"p2pbound/internal/core",
	} {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			analysistest.Run(t, "testdata", []*analysis.Analyzer{bannedimport.Analyzer}, pkg)
		})
	}
}
