// Package lockhold implements the p2pvet analyzer that keeps blocking
// work out of mutex critical sections: while a sync.Mutex or
// sync.RWMutex is held, a function may not perform channel operations,
// blocking I/O, or call into //p2p:hotpath functions — any mutex a
// hot-path or control-plane goroutine contends must bound its hold
// times, or a slow snapshot write stalls the packet path (the daemon's
// snapshot-save-under-lock hazard class).
//
// Lock regions are lexical: from a .Lock()/.RLock() call on a
// sync.Mutex/sync.RWMutex-typed expression to the matching
// .Unlock()/.RUnlock() on the same expression in the same statement
// list, or — for the defer x.Unlock() idiom — to the end of the
// enclosing block. Within a region the analyzer reports:
//
//   - channel sends, receives, selects, and range-over-channel loops;
//   - calls to package-level os.* and net.* functions, and the io
//     pumps (io.Copy, io.ReadAll, io.ReadFull, …) that drive reads and
//     writes of unbounded size;
//   - direct time.Sleep calls;
//   - calls to //p2p:hotpath module functions (hot-path work must not
//     be serialized under a lock the packet path contends);
//   - calls to module functions that transitively perform channel
//     operations or blocking I/O, discovered by a per-package fixed
//     point and propagated across packages as facts.
//
// time.Sleep does not propagate through the fact: a bounded, constant
// sleep inside a backpressure helper (the SPSC ring's idleWait) is a
// deliberate design, unlike an unbounded channel or I/O wait. Dynamic
// calls (interface methods, func values) are outside the static
// contract, exactly as in the hotpath analyzer.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"p2pbound/internal/analysis"
)

// Analyzer is the lock-hold discipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "check that no channel ops, blocking I/O, or hotpath calls happen while holding a mutex",
	Run:  run,
}

// Fact-key prefixes: "blk|<key>" marks a module function that may block
// (channel ops or blocking I/O, transitively); "hot|<key>" mirrors the
// //p2p:hotpath annotation for this analyzer's cross-package view
// (facts are namespaced per analyzer, so the hotpath analyzer's own
// facts are invisible here).
const (
	factBlocks = "blk|"
	factHot    = "hot|"
)

// ioPumps are the package-level io functions that drive reads/writes of
// unbounded size; constructors (io.MultiWriter, io.LimitReader) merely
// wrap and stay allowed.
var ioPumps = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadAll": true, "ReadFull": true, "ReadAtLeast": true,
	"WriteString": true, "Pipe": false,
}

// netPure are package net functions that only parse or format — no
// sockets, no resolver — and therefore cannot block.
var netPure = map[string]bool{
	"ParseIP": true, "ParseCIDR": true, "ParseMAC": true,
	"IPv4": true, "IPv4Mask": true, "CIDRMask": true,
	"JoinHostPort": true, "SplitHostPort": true,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Phase 1: classify this package's functions — hotpath annotations
	// and a fixed point over "may block".
	decls := make(map[*types.Func]*ast.FuncDecl)
	hot := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if analysis.HasDirective(fd.Doc, analysis.DirectiveHotpath) {
				hot[fn] = true
				pass.ExportFact(factHot + analysis.FuncKey(fn))
			}
		}
	}
	blocks := make(map[*types.Func]string) // fn -> first blocking construct, for diagnostics
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if _, done := blocks[fn]; done {
				continue
			}
			if why := directlyBlocks(pass, blocks, fd); why != "" {
				blocks[fn] = why
				changed = true
			}
		}
	}
	for fn := range blocks {
		pass.ExportFact(factBlocks + analysis.FuncKey(fn))
	}

	// Phase 2: find lock regions and audit them.
	for _, fd := range decls {
		c := &checker{pass: pass, blocks: blocks, hot: hot}
		c.scanBlocks(fd.Body)
	}
	return nil
}

// directlyBlocks reports why fd's body may block ("" if it cannot):
// channel constructs, blocking stdlib calls, or a call to a module
// function already classified as blocking. Func literal bodies are
// excluded — a closure handed elsewhere runs on the callee's schedule.
func directlyBlocks(pass *analysis.Pass, blocks map[*types.Func]string, fd *ast.FuncDecl) string {
	why := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			why = "a channel send"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				why = "a channel receive"
			}
		case *ast.SelectStmt:
			why = "a select"
		case *ast.RangeStmt:
			if isChan(pass.TypesInfo.TypeOf(n.X)) {
				why = "a range over a channel"
			}
		case *ast.CallExpr:
			why = blockingCall(pass, blocks, n)
		}
		return true
	})
	return why
}

// blockingCall classifies one call: "" when it cannot block, otherwise
// a short description of the blocking construct.
func blockingCall(pass *analysis.Pass, blocks map[*types.Func]string, call *ast.CallExpr) string {
	callee := staticCallee(pass.TypesInfo, call)
	if callee == nil {
		return "" // dynamic: out of static scope
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if pass.InModule(path) {
		if _, local := blocks[callee]; local && callee.Pkg() == pass.Pkg {
			return "a call to " + callee.Name() + ", which may block"
		}
		if callee.Pkg() != pass.Pkg && pass.ImportedFact(factBlocks+analysis.FuncKey(callee)) {
			return "a call to " + path + "." + callee.Name() + ", which may block"
		}
		return ""
	}
	if callee.Type().(*types.Signature).Recv() != nil {
		return "" // methods on stdlib values (bytes.Buffer, binary.LittleEndian) stay allowed
	}
	switch {
	case path == "os", path == "net" && !netPure[callee.Name()]:
		return "a call to " + path + "." + callee.Name()
	case path == "io" && ioPumps[callee.Name()]:
		return "a call to io." + callee.Name()
	}
	return ""
}

// checker walks one function looking for lock regions.
type checker struct {
	pass   *analysis.Pass
	blocks map[*types.Func]string
	hot    map[*types.Func]bool
}

// scanBlocks descends into every statement list, tracking regions per
// block.
func (c *checker) scanBlocks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		c.scanList(list)
		return true
	})
}

// scanList finds Lock/Unlock pairs within one statement list and audits
// the statements between them. Nested statements are covered because
// the audit walks whole statements; nested statement lists are visited
// again by scanBlocks, so an inner Lock opens its own region.
func (c *checker) scanList(list []ast.Stmt) {
	for i, stmt := range list {
		mu, kind := c.lockCall(stmt)
		if mu == "" {
			continue
		}
		end := len(list)
		deferred := kind == lockDeferred
		if !deferred {
			for j := i + 1; j < len(list); j++ {
				if c.unlockCall(list[j]) == mu {
					end = j
					break
				}
			}
		}
		for j := i + 1; j < end; j++ {
			c.auditStmt(list[j], mu)
		}
	}
}

type lockKind int

const (
	lockNone lockKind = iota
	lockPlain
	lockDeferred
)

// lockCall matches `x.Lock()` / `x.RLock()` statements (and the
// `x.Lock(); defer x.Unlock()` idiom's first half). It returns the
// rendered mutex expression and how the region ends.
func (c *checker) lockCall(stmt ast.Stmt) (string, lockKind) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", lockNone
	}
	mu, name := c.mutexMethod(es.X)
	if mu == "" || (name != "Lock" && name != "RLock") {
		return "", lockNone
	}
	return mu, lockPlain
}

// unlockCall matches `x.Unlock()` / `x.RUnlock()` statements and
// returns the rendered mutex expression.
func (c *checker) unlockCall(stmt ast.Stmt) string {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	mu, name := c.mutexMethod(es.X)
	if name != "Unlock" && name != "RUnlock" {
		return ""
	}
	return mu
}

// mutexMethod matches a call `recv.M()` where recv has type sync.Mutex
// or sync.RWMutex (possibly behind a pointer) and returns the rendered
// receiver and method name.
func (c *checker) mutexMethod(e ast.Expr) (string, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", ""
	}
	t := s.Recv()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	if name := obj.Name(); name != "Mutex" && name != "RWMutex" {
		return "", ""
	}
	return exprString(sel.X), sel.Sel.Name
}

// auditStmt reports blocking constructs anywhere inside one in-region
// statement. The deferred form of the region opener is skipped (it is
// the region's own bookkeeping), as are func literal bodies.
func (c *checker) auditStmt(stmt ast.Stmt, mu string) {
	if ds, ok := stmt.(*ast.DeferStmt); ok {
		if m, name := c.mutexMethod(ds.Call); m == mu && (name == "Unlock" || name == "RUnlock") {
			return
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.report(n.Pos(), mu, "performs a channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), mu, "performs a channel receive")
			}
		case *ast.SelectStmt:
			c.report(n.Pos(), mu, "selects on channels")
		case *ast.RangeStmt:
			if isChan(c.pass.TypesInfo.TypeOf(n.X)) {
				c.report(n.Pos(), mu, "ranges over a channel")
			}
		case *ast.CallExpr:
			c.auditCall(n, mu)
		}
		return true
	})
}

func (c *checker) auditCall(call *ast.CallExpr, mu string) {
	callee := staticCallee(c.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	path := callee.Pkg().Path()
	if c.pass.InModule(path) {
		key := analysis.FuncKey(callee)
		isHot := c.hot[callee] || (callee.Pkg() != c.pass.Pkg && c.pass.ImportedFact(factHot+key))
		if isHot {
			c.report(call.Pos(), mu, "calls //p2p:hotpath function "+callee.Name()+"; hot-path work must not run under a lock the packet path contends")
			return
		}
		if why, local := c.blocks[callee]; local && callee.Pkg() == c.pass.Pkg {
			c.report(call.Pos(), mu, "calls "+callee.Name()+", which may block ("+why+")")
			return
		}
		if callee.Pkg() != c.pass.Pkg && c.pass.ImportedFact(factBlocks+key) {
			c.report(call.Pos(), mu, "calls "+path+"."+callee.Name()+", which may block")
		}
		return
	}
	if callee.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch {
	case path == "time" && callee.Name() == "Sleep":
		c.report(call.Pos(), mu, "sleeps")
	case path == "os", path == "net" && !netPure[callee.Name()]:
		c.report(call.Pos(), mu, "calls "+path+"."+callee.Name())
	case path == "io" && ioPumps[callee.Name()]:
		c.report(call.Pos(), mu, "calls io."+callee.Name())
	}
}

func (c *checker) report(pos token.Pos, mu, what string) {
	c.pass.Reportf(pos, what+" while holding "+mu+"; move the blocking work outside the critical section (stage before the Lock, apply under it)")
}

// staticCallee resolves the *types.Func a call statically dispatches
// to, or nil for dynamic calls (func values, interface methods).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				fn, _ := sel.Obj().(*types.Func)
				if fn != nil && isInterfaceMethod(fn) {
					return nil
				}
				return fn
			}
			return nil
		}
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func isInterfaceMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	return recv != nil && types.IsInterface(recv.Type())
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}

// exprString renders a simple receiver expression (identifier and
// selector chains) for diagnostics and Lock/Unlock matching.
func exprString(e ast.Expr) string {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprString(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		if base := exprString(e.X); base != "" {
			return base + "[...]"
		}
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
