package lockhold_test

import (
	"testing"

	"p2pbound/internal/analysis"
	"p2pbound/internal/analysis/analysistest"
	"p2pbound/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{lockhold.Analyzer}, "locktest")
}

func TestLockholdCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{lockhold.Analyzer}, "lockuser")
}
