// Package lockdep exports a hotpath function and a may-block function
// whose facts flow to the importing fixture (lockuser).
package lockdep

//p2p:hotpath
func Probe(v uint64) uint64 { return v * 2654435761 }

func Wait(ch chan int) int { return <-ch }
