// Package lockuser imports lockdep and checks that hotpath and
// may-block classifications cross the package boundary through facts.
package lockuser

import (
	"sync"

	"lockdep"
)

type gate struct {
	mu sync.Mutex
	ch chan int
	v  uint64
}

func bad(g *gate) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = lockdep.Probe(g.v) // want `calls //p2p:hotpath function Probe`
	lockdep.Wait(g.ch)       // want `calls lockdep\.Wait, which may block while holding g\.mu`
}

// good stages the blocking call before the Lock.
func good(g *gate) {
	n := lockdep.Wait(g.ch)
	g.mu.Lock()
	g.v = uint64(n)
	g.mu.Unlock()
	g.v = lockdep.Probe(g.v)
}
