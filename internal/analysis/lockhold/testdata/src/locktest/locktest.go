// Package locktest exercises the lockhold analyzer within one package:
// channel ops, blocking stdlib calls, hotpath calls, and transitively
// blocking module calls inside lexical mutex regions.
package locktest

import (
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

type state struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
	ch   chan int
}

func badSend(s *state) {
	s.mu.Lock()
	s.ch <- 1 // want `performs a channel send while holding s\.mu`
	s.mu.Unlock()
}

func badRecv(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `performs a channel receive while holding s\.mu`
}

func badSelect(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `selects on channels while holding s\.mu`
	case <-s.ch: // want `performs a channel receive while holding s\.mu`
	default:
	}
}

func badRange(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch { // want `ranges over a channel while holding s\.mu`
	}
}

func badOS(s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := os.Create("x") // want `calls os\.Create while holding s\.mu`
	return err
}

func badNet(s *state, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	net.Dial("tcp", addr) // want `calls net\.Dial while holding s\.mu`
}

func badIOPump(s *state, src io.Reader) {
	s.mu.Lock()
	defer s.mu.Unlock()
	io.Copy(io.Discard, src) // want `calls io\.Copy while holding s\.mu`
}

func badSleep(s *state) {
	s.rw.RLock()
	time.Sleep(time.Millisecond) // want `sleeps while holding s\.rw`
	s.rw.RUnlock()
}

//p2p:hotpath
func decide(v int) int { return v + 1 }

func badHot(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = decide(1) // want `calls //p2p:hotpath function decide`
}

func waits(s *state) int {
	return <-s.ch
}

func badPropagated(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	waits(s) // want `calls waits, which may block \(a channel receive\) while holding s\.mu`
}

// goodStaged stages the blocking work before the Lock and applies the
// result under it.
func goodStaged(s *state) {
	v := waits(s)
	s.mu.Lock()
	s.data["k"] = v
	s.mu.Unlock()
}

// goodAfterUnlock: the region ends at the matching Unlock in the same
// statement list; the send after it is free.
func goodAfterUnlock(s *state) {
	s.mu.Lock()
	s.data["k"] = 1
	s.mu.Unlock()
	s.ch <- 1
}

// goodPureNet: parse-only net functions cannot block.
func goodPureNet(s *state) net.IP {
	s.mu.Lock()
	defer s.mu.Unlock()
	return net.ParseIP("192.0.2.1")
}

// goodStdlibMethod: methods on stdlib values stay allowed.
func goodStdlibMethod(s *state) string {
	var b strings.Builder
	s.mu.Lock()
	defer s.mu.Unlock()
	b.WriteString("x")
	return b.String()
}

// goodClosure: a func literal's body runs on the callee's schedule, not
// under this lock.
func goodClosure(s *state) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { s.ch <- 1 }
}
