// Package analysis is a dependency-free core of a go/analysis-style
// static-analysis framework: analyzers, passes, diagnostics, and
// cross-package facts.
//
// It exists because this module takes no external dependencies (see
// ROADMAP), so golang.org/x/tools/go/analysis cannot be imported; the
// subset implemented here keeps the same shape — an Analyzer owns a Run
// function over a Pass; a Pass reports Diagnostics and exchanges facts
// with the passes of imported packages — so the suite can migrate to
// x/tools mechanically if the dependency policy ever changes.
//
// Two drivers execute analyzers (package driver): a standalone loader
// that type-checks the module from source with export data obtained from
// `go list -export`, and a `go vet -vettool` backend speaking the vet
// build-system protocol (-V=full / -flags / unit .cfg files), so the
// same analyzers run both as `go run ./cmd/p2pvet ./...` and under
// `go vet -vettool=$(which p2pvet) ./...` with full build caching.
//
// Facts are deliberately simpler than x/tools facts: a fact is an opaque
// string key exported by the pass of the package that declares a symbol
// (e.g. the fully qualified name of a function annotated //p2p:hotpath)
// and visible to the passes of every package that transitively imports
// it. String keys sidestep gob registration and object resolution while
// carrying everything the p2pvet suite needs.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Run inspects a single package via the
// Pass and reports diagnostics; it must be safe to call once per package
// in dependency order.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fact files. It
	// must be a valid identifier.
	Name string
	// Doc is the help text.
	Doc string
	// Run executes the analyzer on one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass provides one analyzer with one type-checked package and the
// fact streams connecting it to the package's dependencies.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the module path of the package under analysis ("" when
	// unknown, e.g. GOPATH builds).
	Module string

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)

	// imported holds the union of the fact keys exported — for this
	// analyzer — by every package the current one transitively imports.
	imported map[string]bool
	// export records a fact key for the current package.
	export func(key string)
	// isStandard reports whether an import path names a standard-library
	// package. Drivers that know (go list's Standard field, the vet
	// config's Standard map) supply it; nil falls back to a heuristic.
	isStandard func(path string) bool
}

// NewPass assembles a Pass; it is exported for the drivers and the test
// harness, not for analyzers.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, module string,
	report func(Diagnostic), imported map[string]bool, export func(string), isStandard func(string) bool) *Pass {
	return &Pass{
		Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Module: module,
		Report: report, imported: imported, export: export, isStandard: isStandard,
	}
}

// Reportf reports a diagnostic at pos with a pre-formatted message.
// (The framework takes no fmt dependency in its message path; analyzers
// build messages with string concatenation and strconv.)
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// ExportFact publishes a fact key from the current package to the
// passes of every package that imports it.
func (p *Pass) ExportFact(key string) {
	if p.export != nil {
		p.export(key)
	}
}

// ImportedFact reports whether any transitively imported package
// exported the given fact key for this analyzer.
func (p *Pass) ImportedFact(key string) bool { return p.imported[key] }

// IsStandard reports whether path names a standard-library package.
// When the driver did not supply the exact set, a heuristic is used:
// standard-library paths have a dot-free first element and never match
// the module path.
func (p *Pass) IsStandard(path string) bool {
	if p.isStandard != nil {
		return p.isStandard(path)
	}
	if p.Module != "" && (path == p.Module || strings.HasPrefix(path, p.Module+"/")) {
		return false
	}
	first := path
	if i := strings.IndexByte(first, '/'); i >= 0 {
		first = first[:i]
	}
	return !strings.Contains(first, ".")
}

// InModule reports whether the package at path belongs to the module
// under analysis — the domain over which the hotpath call discipline is
// enforced. Anything that is not standard library is treated as module
// code: this module has no third-party dependencies, and erring toward
// "module" keeps the check conservative (an unannotated callee is
// reported rather than silently trusted).
func (p *Pass) InModule(path string) bool {
	if p.Module != "" && (path == p.Module || strings.HasPrefix(path, p.Module+"/")) {
		return true
	}
	return !p.IsStandard(path)
}

// IsTestFile reports whether pos lies in a _test.go file. The p2pvet
// suite proves production invariants; tests exercise internals in ways
// the invariants intentionally forbid (direct field pokes, fmt in
// banned packages), so every analyzer skips test files.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Directive names understood by the suite. A directive comment is a
// line of the form //p2p:<name>[ <note>] with no space after the
// slashes, in the style of //go: directives.
const (
	// DirectiveHotpath marks a function whose body must be
	// allocation-free, lock-free, and wall-clock-free, and which may
	// statically call only other hotpath-annotated module functions.
	DirectiveHotpath = "p2p:hotpath"
	// DirectiveAtomic marks a struct field that may only be accessed
	// through sync/atomic operations (or is of a sync/atomic type).
	DirectiveAtomic = "p2p:atomic"
	// DirectiveBounded waives the append diagnostic on one line: the
	// author asserts the append can never grow its destination beyond
	// pre-allocated capacity (and a runtime allocation guard proves it).
	DirectiveBounded = "p2p:bounded"
	// DirectiveConfined marks goroutine-confined state. On a struct
	// field, "//p2p:confined <group>" declares the field owned by the
	// goroutine running the group's member functions; on a function,
	// "//p2p:confined <group>" makes it a member (callable only from
	// other members/entries of the group or as the operand of a go
	// statement), and "//p2p:confined <group> entry" marks an API entry
	// point whose callers promise the single-goroutine discipline.
	DirectiveConfined = "p2p:confined"
	// DirectiveCodec connects encoders and decoders. On a function,
	// "//p2p:codec <name> encode|decode" assigns it to one side of the
	// named codec; on a struct type, a bare "//p2p:codec" opts the
	// struct into field-parity checking for every codec that touches it.
	DirectiveCodec = "p2p:codec"
	// DirectiveCodecSkip waives codec-parity coverage for one struct
	// field: "//p2p:codecskip <reason>" asserts the field is
	// deliberately not serialized.
	DirectiveCodecSkip = "p2p:codecskip"
)

// HasDirective reports whether the comment group contains the given
// //p2p: directive.
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if isDirective(c.Text, directive) {
			return true
		}
	}
	return false
}

// DirectiveArgs collects the whitespace-split arguments of every
// occurrence of the directive in the comment group, one slice per
// occurrence (an empty slice for a bare directive). A comment group may
// carry several occurrences — e.g. a function that is a member of two
// confinement groups writes two //p2p:confined lines.
func DirectiveArgs(cg *ast.CommentGroup, directive string) [][]string {
	if cg == nil {
		return nil
	}
	var out [][]string
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+directive)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		// A trailing "// ..." note (fixture want comments) is not part of
		// the directive's arguments.
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = rest[:i]
		}
		out = append(out, strings.Fields(rest))
	}
	return out
}

// isDirective matches "//p2p:<name>" exactly or followed by a space and
// a free-form note.
func isDirective(text, directive string) bool {
	rest, ok := strings.CutPrefix(text, "//"+directive)
	return ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t')
}

// DirectiveLines collects, for one file, the set of lines carrying the
// given directive as a trailing or standalone comment. Line-scoped
// directives (//p2p:bounded) attach to the statement on their line.
func DirectiveLines(fset *token.FileSet, file *ast.File, directive string) map[int]bool {
	var lines map[int]bool
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if isDirective(c.Text, directive) {
				if lines == nil {
					lines = make(map[int]bool)
				}
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// FuncKey returns the stable fact key of a function or method: its
// package-qualified FullName, e.g. "(*p2pbound/internal/core.Filter).Process"
// or "p2pbound/internal/bitvec.New". The form is identical whether the
// *types.Func came from source type-checking or from export data, which
// is what lets facts cross the source/export-data boundary.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// FieldKey returns the stable fact key of a struct field:
// "<pkgpath>.<StructName>.<FieldName>".
func FieldKey(pkgPath, structName, fieldName string) string {
	return pkgPath + "." + structName + "." + fieldName
}
