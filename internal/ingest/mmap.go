package ingest

import (
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

// Framing errors: once record framing is broken, no later byte of the
// file can be trusted, so these are terminal — surfaced from ReadBatch
// after the packets decoded so far, exactly like pcap.Reader's hard
// read errors (a torn capture must look aborted, not complete).
var (
	// ErrTruncatedFile reports a record header or frame extending past
	// the end of the mapping — the file a SIGKILLed tcpdump leaves.
	ErrTruncatedFile = errors.New("ingest: truncated record")
	// ErrBadRecordLength reports a record length outside the plausible
	// range (negative, over the snap length, or over 1 MiB).
	ErrBadRecordLength = errors.New("ingest: implausible record length")
)

// MMapSource walks a whole pcap file held in memory — a real mmap(2)
// mapping on linux, a one-shot read elsewhere — decoding frames in
// place. No frame bytes are copied and no packets are allocated:
// payloads alias the mapping, so a batch's packets are valid until the
// next ReadBatch and payloads until Close.
//
// The walker mirrors pcap.Reader record for record (same byte-order
// handling, plausibility limits, timestamp base and clock-regression
// clamp), so replaying a file through either path yields identical
// packets; TestMMapMatchesReader pins this. The one divergence is
// error handling: where the streaming reader surfaces each bad frame
// to its caller, the walker counts it in Malformed and keeps going —
// unless the record framing itself is broken (header past the end of
// the mapping, implausible length), after which no later offset can be
// trusted and the walk ends.
type MMapSource struct {
	data    []byte
	off     int  //p2p:confined mmapwalk
	swapped bool // file byte order is opposite the LE record layout we load
	snaplen int
	verify  bool

	clientNet packet.Network

	baseSec  int64         //p2p:confined mmapwalk
	baseUsec int64         //p2p:confined mmapwalk
	baseSet  bool          //p2p:confined mmapwalk
	lastTS   time.Duration //p2p:confined mmapwalk

	malformed        int64 //p2p:confined mmapwalk
	clockRegressions int64 //p2p:confined mmapwalk
	done             bool  //p2p:confined mmapwalk
	err              error //p2p:confined mmapwalk // terminal framing error, nil on a clean end

	close func() error
}

// NewMemSource wraps an in-memory pcap file (global header included).
// data is aliased, never copied; it must stay valid and unmodified
// until the source is abandoned. verify enables IP/transport checksum
// verification, with failing frames counted in Malformed and skipped.
//
//p2p:confined mmapwalk entry
func NewMemSource(data []byte, clientNet packet.Network, verify bool) (*MMapSource, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("ingest: pcap global header truncated: %d bytes", len(data))
	}
	magic := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
	var swapped bool
	switch magic {
	case pcap.MagicLE:
		swapped = false
	case pcap.MagicBE:
		swapped = true
	default:
		return nil, fmt.Errorf("ingest: bad pcap magic %#x", magic)
	}
	s := &MMapSource{
		data:      data,
		off:       24,
		swapped:   swapped,
		verify:    verify,
		clientNet: clientNet,
	}
	s.snaplen = int(s.u32(16))
	if lt := s.u32(20); lt != pcap.LinkEthernet {
		return nil, fmt.Errorf("ingest: unsupported link type %d", lt)
	}
	s.off = 24
	return s, nil
}

// OpenMMap maps the pcap file at path and returns a source over it.
// Close releases the mapping; every batch read from the source dies
// with it.
func OpenMMap(path string, clientNet packet.Network, verify bool) (*MMapSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: %w", err)
	}
	data, closeMap, err := mapFile(f, st.Size())
	f.Close() // the mapping (or copied buffer) outlives the descriptor
	if err != nil {
		return nil, fmt.Errorf("ingest: map %s: %w", path, err)
	}
	s, err := NewMemSource(data, clientNet, verify)
	if err != nil {
		closeMap()
		return nil, err
	}
	s.close = closeMap
	return s, nil
}

// Close releases the file mapping. The source and every packet it
// produced become invalid.
//
//p2p:confined mmapwalk entry
func (s *MMapSource) Close() error {
	s.done = true
	s.data = nil
	if s.close == nil {
		return nil
	}
	c := s.close
	s.close = nil
	return c()
}

// Malformed reports how many well-framed records were skipped:
// undecodable frames and checksum failures under verification. Like
// ReadBatch, a reader-goroutine call.
//
//p2p:confined mmapwalk entry
func (s *MMapSource) Malformed() int64 { return s.malformed }

// ClockRegressions reports how many records carried a capture timestamp
// behind an earlier record's; their TS values were clamped.
//
//p2p:confined mmapwalk entry
func (s *MMapSource) ClockRegressions() int64 { return s.clockRegressions }

// ReadBatch decodes the next run of frames into b.Pkts in place and
// returns how many it produced, with io.EOF (possibly alongside a final
// n > 0) once the mapping is cleanly exhausted or a framing error
// (ErrTruncatedFile, ErrBadRecordLength) if the record stream breaks
// mid-file.
//
//p2p:confined mmapwalk entry
func (s *MMapSource) ReadBatch(b *Batch) (int, error) {
	if s.done {
		if s.err != nil {
			return 0, s.err
		}
		return 0, io.EOF
	}
	n := s.walk(b.Pkts)
	if !s.done {
		return n, nil
	}
	if s.err != nil {
		return n, s.err
	}
	return n, io.EOF
}

// u32 loads a little-endian uint32 at off, byte-swapped for big-endian
// files.
//
//p2p:hotpath
func (s *MMapSource) u32(off int) uint32 {
	b := s.data[off : off+4 : off+4]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if s.swapped {
		v = v<<24 | v>>24 | v<<8&0x00ff0000 | v>>8&0x0000ff00
	}
	return v
}

// walk is the hot decode loop: it advances through records until dst is
// full or the mapping ends, decoding accepted frames into dst in place.
// It never reads past len(s.data) — every record header and frame is
// bounds-checked against the mapping before it is touched.
//
//p2p:hotpath
//p2p:confined mmapwalk
func (s *MMapSource) walk(dst []packet.Packet) int {
	n := 0
	for n < len(dst) {
		rem := len(s.data) - s.off
		if rem == 0 {
			s.done = true
			break
		}
		if rem < 16 {
			// Trailing bytes too short for a record header: the file
			// was truncated mid-record.
			s.err = ErrTruncatedFile
			s.done = true
			break
		}
		sec := s.u32(s.off)
		usec := s.u32(s.off + 4)
		// Widen unsigned, as pcap.Reader does: a length with the high bit
		// set must fail the same plausibility gate, not flip negative.
		inclLen := int(s.u32(s.off + 8))
		origLen := int(s.u32(s.off + 12))
		if inclLen < 0 || inclLen > s.snaplen+pcap.EthHeaderLen || inclLen > 1<<20 {
			// Same plausibility gate as pcap.Reader. A record length
			// this wrong means the framing is lost; no later offset can
			// be trusted.
			s.err = ErrBadRecordLength
			s.done = true
			break
		}
		if rem == 16 && inclLen > 0 {
			// A record header with its frame bytes entirely absent: the
			// streaming reader's frame io.ReadFull reads zero bytes and
			// reports a bare io.EOF — a clean end of stream. Mirror it,
			// keeping the two paths' terminal conditions identical.
			s.done = true
			break
		}
		if rem-16 < inclLen {
			s.err = ErrTruncatedFile
			s.done = true
			break
		}
		frame := s.data[s.off+16 : s.off+16+inclLen : s.off+16+inclLen]
		s.off += 16 + inclLen

		// The timestamp base is the first record's capture time, set
		// once the record is well-framed — even if its frame fails to
		// decode — matching pcap.Reader.
		if !s.baseSet {
			s.baseSec = int64(sec)
			s.baseUsec = int64(usec)
			s.baseSet = true
		}

		pkt := &dst[n]
		if pcap.DecodeFrame(frame, origLen, s.verify, pkt) != nil {
			s.malformed++
			continue
		}

		rel := time.Duration(int64(sec)-s.baseSec)*time.Second +
			time.Duration(int64(usec)-s.baseUsec)*time.Microsecond
		if rel < s.lastTS {
			s.clockRegressions++
			rel = s.lastTS
		} else {
			s.lastTS = rel
		}
		pkt.TS = rel
		pkt.Dir = packet.Classify(pkt.Pair, s.clientNet)
		n++
	}
	return n
}
