//go:build !linux || !afpacket

package ingest

import (
	"errors"

	"p2pbound/internal/packet"
)

// ErrAFPacketUnavailable reports a build without live-capture support;
// rebuild with -tags afpacket on linux to enable it.
var ErrAFPacketUnavailable = errors.New("ingest: built without afpacket support")

// AFPacketSource is unavailable in this build. The ring walker itself
// (afpacket_ring.go) still compiles and is unit-tested everywhere; only
// the kernel socket plumbing is linux+afpacket.
type AFPacketSource struct{}

// OpenAFPacket always fails in this build.
func OpenAFPacket(iface string, clientNet packet.Network, cfg RingConfig) (*AFPacketSource, error) {
	return nil, ErrAFPacketUnavailable
}

// ReadBatch always fails in this build.
func (s *AFPacketSource) ReadBatch(b *Batch) (int, error) { return 0, ErrAFPacketUnavailable }

// Malformed reports zero in this build.
func (s *AFPacketSource) Malformed() int64 { return 0 }

// ClockRegressions reports zero in this build.
func (s *AFPacketSource) ClockRegressions() int64 { return 0 }

// Close is a no-op in this build.
func (s *AFPacketSource) Close() error { return nil }
