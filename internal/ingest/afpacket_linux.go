//go:build linux && afpacket

package ingest

import (
	"fmt"
	"net"
	"syscall"
	"unsafe"

	"p2pbound/internal/packet"
)

// Socket-level AF_PACKET ABI not exposed by the syscall package.
const (
	packetRxRing  = 5  // PACKET_RX_RING
	packetVersion = 10 // PACKET_VERSION
	tpacketV2     = 1  // TPACKET_V2
)

// tpacketReq mirrors struct tpacket_req (linux/if_packet.h).
type tpacketReq struct {
	blockSize uint32
	blockNr   uint32
	frameSize uint32
	frameNr   uint32
}

// AFPacketSource captures live traffic from a network interface through
// a TPACKET_V2 RX ring shared with the kernel. Frames are decoded in
// place from the ring mapping — the same zero-copy contract as
// MMapSource — and ring slots are returned to the kernel one batch
// late, so the previous batch stays valid across ReadBatch.
type AFPacketSource struct {
	fd   int
	ring []byte
	rr   *ringReader
}

// OpenAFPacket binds a packet socket to iface and maps its RX ring.
// Requires CAP_NET_RAW. A zero cfg selects DefaultRingConfig.
func OpenAFPacket(iface string, clientNet packet.Network, cfg RingConfig) (*AFPacketSource, error) {
	if cfg.FrameSize == 0 {
		cfg = DefaultRingConfig()
	}
	if cfg.FrameSize%16 != 0 || cfg.BlockSize%cfg.FrameSize != 0 {
		return nil, fmt.Errorf("ingest: invalid ring config %+v", cfg)
	}
	ifi, err := net.InterfaceByName(iface)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}

	// ETH_P_ALL in network byte order, as bind and socket want it.
	proto := uint16(syscall.ETH_P_ALL)<<8 | uint16(syscall.ETH_P_ALL)>>8
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(proto))
	if err != nil {
		return nil, fmt.Errorf("ingest: packet socket: %w", err)
	}
	if err := syscall.SetsockoptInt(fd, syscall.SOL_PACKET, packetVersion, tpacketV2); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("ingest: PACKET_VERSION: %w", err)
	}
	req := tpacketReq{
		blockSize: uint32(cfg.BlockSize),
		blockNr:   uint32(cfg.FrameCount * cfg.FrameSize / cfg.BlockSize),
		frameSize: uint32(cfg.FrameSize),
		frameNr:   uint32(cfg.FrameCount),
	}
	if _, _, errno := syscall.Syscall6(syscall.SYS_SETSOCKOPT,
		uintptr(fd), uintptr(syscall.SOL_PACKET), uintptr(packetRxRing),
		uintptr(unsafe.Pointer(&req)), unsafe.Sizeof(req), 0); errno != 0 {
		syscall.Close(fd)
		return nil, fmt.Errorf("ingest: PACKET_RX_RING: %w", errno)
	}
	ring, err := syscall.Mmap(fd, 0, cfg.FrameCount*cfg.FrameSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("ingest: map ring: %w", err)
	}
	sll := syscall.SockaddrLinklayer{Protocol: proto, Ifindex: ifi.Index}
	if err := syscall.Bind(fd, &sll); err != nil {
		syscall.Munmap(ring)
		syscall.Close(fd)
		return nil, fmt.Errorf("ingest: bind %s: %w", iface, err)
	}
	return &AFPacketSource{
		fd:   fd,
		ring: ring,
		rr:   newRingReader(ring, cfg, clientNet),
	}, nil
}

// ReadBatch fills b with the next frames from the ring, blocking until
// at least one arrives or the socket dies.
//
//p2p:confined afring entry
func (s *AFPacketSource) ReadBatch(b *Batch) (int, error) {
	for {
		if n := s.rr.readBatch(b.Pkts); n > 0 {
			return n, nil
		}
		var rd syscall.FdSet
		rd.Bits[s.fd/64] |= 1 << (uint(s.fd) % 64)
		if _, err := syscall.Select(s.fd+1, &rd, nil, nil, nil); err != nil {
			if err == syscall.EINTR {
				continue
			}
			return 0, fmt.Errorf("ingest: select: %w", err)
		}
	}
}

// Malformed reports how many ring slots failed to decode. Like
// ReadBatch, a capture-goroutine call.
//
//p2p:confined afring entry
func (s *AFPacketSource) Malformed() int64 { return s.rr.malformed }

// ClockRegressions reports clamped backwards timestamps.
//
//p2p:confined afring entry
func (s *AFPacketSource) ClockRegressions() int64 { return s.rr.clockRegressions }

// Close unmaps the ring and closes the socket.
func (s *AFPacketSource) Close() error {
	if s.fd < 0 {
		return nil
	}
	err := syscall.Munmap(s.ring)
	if cerr := syscall.Close(s.fd); err == nil {
		err = cerr
	}
	s.fd = -1
	s.ring = nil
	return err
}
