package ingest_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"p2pbound/internal/ingest"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

// fuzzSeeds builds the interesting capture shapes: a valid trace, a
// torn one, corrupted frame content, a corrupted record header, and a
// byte-swapped (big-endian) file.
func fuzzSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	pkts := []packet.Packet{
		{
			TS: 0,
			Pair: packet.SocketPair{
				Proto:   packet.TCP,
				SrcAddr: packet.AddrFrom4(140, 112, 1, 1), SrcPort: 40000,
				DstAddr: packet.AddrFrom4(8, 8, 8, 8), DstPort: 6881,
			},
			Dir: packet.Outbound, Len: 60, Flags: packet.SYN | packet.ACK,
			Payload: []byte("\x13BitTorrent protocol"),
		},
		{
			TS: 750 * time.Millisecond,
			Pair: packet.SocketPair{
				Proto:   packet.UDP,
				SrcAddr: packet.AddrFrom4(9, 9, 9, 9), SrcPort: 53,
				DstAddr: packet.AddrFrom4(140, 112, 1, 1), DstPort: 5353,
			},
			Dir: packet.Inbound, Len: 40,
			Payload: []byte{1, 2, 3},
		},
		{
			TS: 2 * time.Second,
			Pair: packet.SocketPair{
				Proto:   packet.TCP,
				SrcAddr: packet.AddrFrom4(140, 112, 1, 2), SrcPort: 50123,
				DstAddr: packet.AddrFrom4(7, 7, 7, 7), DstPort: 443,
			},
			Dir: packet.Outbound, Len: 52, Flags: packet.FIN | packet.ACK,
		},
	}
	var buf bytes.Buffer
	if err := pcap.WriteAll(&buf, pkts, 0, time.Unix(1_163_000_000, 0)); err != nil {
		tb.Fatal(err)
	}
	valid := buf.Bytes()
	badtype := append([]byte(nil), valid...)
	badtype[24+16+12] ^= 0xff // first frame's EtherType
	badlen := append([]byte(nil), valid...)
	badlen[24+10] = 0xff // first record's inclLen high bytes
	return map[string][]byte{
		"seed-valid":     valid,
		"seed-truncated": valid[:len(valid)-5],
		"seed-badtype":   badtype,
		"seed-badlen":    badlen,
		"seed-bigendian": swapPcap(valid),
		"seed-header":    valid[:24],
		"seed-empty":     {},
	}
}

// swapPcap converts a little-endian pcap file to big-endian by
// byte-swapping the global and record header fields (frame bytes are
// endian-free). Assumes the input is well-formed.
func swapPcap(data []byte) []byte {
	out := append([]byte(nil), data...)
	swap32 := func(off int) {
		out[off], out[off+1], out[off+2], out[off+3] = out[off+3], out[off+2], out[off+1], out[off]
	}
	swap16 := func(off int) { out[off], out[off+1] = out[off+1], out[off] }
	swap32(0)
	swap16(4)
	swap16(6)
	swap32(8)
	swap32(12)
	swap32(16)
	swap32(20)
	off := 24
	for off+16 <= len(out) {
		inclLen := int(uint32(out[off+8]) | uint32(out[off+9])<<8 | uint32(out[off+10])<<16 | uint32(out[off+11])<<24)
		swap32(off)
		swap32(off + 4)
		swap32(off + 8)
		swap32(off + 12)
		off += 16 + inclLen
	}
	return out
}

// FuzzMMapWalk is the differential fuzz target: on arbitrary bytes the
// zero-copy walker must (a) never panic or read out of bounds and (b)
// produce exactly the packet stream of the streaming pcap.Reader — same
// packets, same skip decisions, same terminal condition.
func FuzzMMapWalk(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, verify := range []bool{false, true} {
			ms, msErr := ingest.NewMemSource(data, testNet, verify)
			r, rErr := pcap.NewReader(bytes.NewReader(data), testNet)
			if (msErr == nil) != (rErr == nil) {
				t.Fatalf("header acceptance diverged: mmap %v, reader %v", msErr, rErr)
			}
			if msErr != nil {
				return
			}
			r.VerifyChecksums = verify

			rs := ingest.NewReaderSource(r)
			want, wantErr := drainAll(rs)
			got, gotErr := drainAll(ms)

			if len(got) != len(want) {
				t.Fatalf("verify=%v: mmap decoded %d packets, reader %d", verify, len(got), len(want))
			}
			for i := range want {
				if !pktEqual(&got[i], &want[i]) {
					t.Fatalf("verify=%v: packet %d diverged:\nmmap   %+v\nreader %+v", verify, i, got[i], want[i])
				}
			}
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("verify=%v: terminal condition diverged: mmap %v, reader %v", verify, gotErr, wantErr)
			}
			if ms.Malformed() != rs.Malformed() {
				t.Fatalf("verify=%v: malformed counts diverged: mmap %d, reader %d", verify, ms.Malformed(), rs.Malformed())
			}
			if ms.ClockRegressions() != rs.ClockRegressions() {
				t.Fatalf("verify=%v: clock regressions diverged: mmap %d, reader %d",
					verify, ms.ClockRegressions(), rs.ClockRegressions())
			}
		}
	})
}

// drainAll reads src to exhaustion, cloning packets, and returns the
// terminal error (nil for a clean io.EOF end).
func drainAll(src ingest.Ingest) ([]packet.Packet, error) {
	b := ingest.NewBatch(64)
	var out []packet.Packet
	for {
		n, err := src.ReadBatch(b)
		for i := range b.Pkts[:n] {
			cp := b.Pkts[i]
			cp.Payload = append([]byte(nil), cp.Payload...)
			if len(cp.Payload) == 0 {
				cp.Payload = nil
			}
			out = append(out, cp)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
	}
}

// TestRegenIngestFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzMMapWalk, mirroring the f.Add seeds so a cold
// checkout exercises the interesting capture shapes without the
// mutation engine. Run with
//
//	P2PBOUND_REGEN_CORPUS=1 go test -run TestRegenIngestFuzzCorpus ./internal/ingest
//
// after changing the capture format, and commit the result.
func TestRegenIngestFuzzCorpus(t *testing.T) {
	if os.Getenv("P2PBOUND_REGEN_CORPUS") == "" {
		t.Skip("set P2PBOUND_REGEN_CORPUS=1 to rewrite the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzMMapWalk")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range fuzzSeeds(t) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
