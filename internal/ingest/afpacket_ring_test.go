package ingest

import (
	"bytes"
	"encoding/binary"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

// frameBytes renders one packet as an Ethernet frame by round-tripping
// it through the pcap writer and stripping the file framing, so the
// ring test reuses the writer's checksum-correct serialization.
func frameBytes(t *testing.T, pkt packet.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pcap.WriteAll(&buf, []packet.Packet{pkt}, 0, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	inclLen := binary.LittleEndian.Uint32(data[24+8:])
	return data[24+16 : 24+16+int(inclLen)]
}

// postFrame writes a TPACKET_V2 slot: header, frame at mac offset,
// and finally the USER status bit, as the kernel does.
func postFrame(ring []byte, cfg RingConfig, slot int, frame []byte, wireLen int, sec, nsec uint32) {
	s := ring[slot*cfg.FrameSize : (slot+1)*cfg.FrameSize]
	const mac = 32 // anywhere past the header, TPACKET_ALIGNed
	binary.NativeEndian.PutUint32(s[tpOffLen:], uint32(wireLen))
	binary.NativeEndian.PutUint32(s[tpOffSnaplen:], uint32(len(frame)))
	binary.NativeEndian.PutUint16(s[tpOffMac:], mac)
	binary.NativeEndian.PutUint16(s[tpOffNet:], mac+14)
	binary.NativeEndian.PutUint32(s[tpOffSec:], sec)
	binary.NativeEndian.PutUint32(s[tpOffNsec:], nsec)
	copy(s[mac:], frame)
	atomic.StoreUint32((*uint32)(unsafe.Pointer(&s[tpOffStatus])), tpStatusUser)
}

func testPkt(i int, payload []byte) packet.Packet {
	return packet.Packet{
		Pair: packet.SocketPair{
			Proto:   packet.TCP,
			SrcAddr: packet.AddrFrom4(140, 112, 0, byte(i)), SrcPort: 40000 + uint16(i),
			DstAddr: packet.AddrFrom4(9, 9, 9, byte(i)), DstPort: 6881,
		},
		Dir: packet.Outbound, Len: 40 + len(payload), Flags: packet.ACK, Payload: payload,
	}
}

func TestRingReaderSynthesizedRing(t *testing.T) {
	cfg := RingConfig{FrameSize: 512, FrameCount: 8, BlockSize: 4096}
	ring := make([]byte, cfg.FrameSize*cfg.FrameCount)
	clientNet := packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)
	rr := newRingReader(ring, cfg, clientNet)

	// Kernel posts five frames with advancing timestamps.
	for i := 0; i < 5; i++ {
		pkt := testPkt(i, []byte{byte(i), 2, 3, 4})
		postFrame(ring, cfg, i, frameBytes(t, pkt), pkt.Len+14, 100, uint32(i)*1000)
	}

	dst := make([]packet.Packet, 16)
	n := rr.readBatch(dst)
	if n != 5 {
		t.Fatalf("decoded %d frames, want 5", n)
	}
	for i := 0; i < 5; i++ {
		if dst[i].Pair.SrcPort != 40000+uint16(i) {
			t.Fatalf("frame %d: wrong packet %+v", i, dst[i].Pair)
		}
		if want := time.Duration(i) * 1000; dst[i].TS != want {
			t.Fatalf("frame %d: TS %v, want %v", i, dst[i].TS, want)
		}
		if dst[i].Dir != packet.Outbound {
			t.Fatalf("frame %d: direction %v", i, dst[i].Dir)
		}
		if want := []byte{byte(i), 2, 3, 4}; !bytes.Equal(dst[i].Payload, want) {
			t.Fatalf("frame %d: payload %x, want %x", i, dst[i].Payload, want)
		}
	}

	// Zero-copy hold: the five consumed slots are still USER-owned (the
	// batch aliases them) until the next readBatch releases them.
	for i := 0; i < 5; i++ {
		if atomic.LoadUint32(rr.statusPtr(i)) != tpStatusUser {
			t.Fatalf("slot %d released while its batch is still live", i)
		}
	}
	if n := rr.readBatch(dst); n != 0 {
		t.Fatalf("empty ring produced %d frames", n)
	}
	for i := 0; i < 5; i++ {
		if atomic.LoadUint32(rr.statusPtr(i)) != tpStatusKernel {
			t.Fatalf("slot %d not returned to the kernel", i)
		}
	}

	// Wrap-around: post six more frames across the ring boundary, one of
	// them garbage (mac offset past the slot) — counted, not decoded,
	// and its slot still cycles back to the kernel.
	for i := 0; i < 6; i++ {
		slot := (5 + i) % cfg.FrameCount
		pkt := testPkt(10+i, []byte{9, 9})
		postFrame(ring, cfg, slot, frameBytes(t, pkt), pkt.Len+14, 101, uint32(i)*500)
	}
	badSlot := 6
	binary.NativeEndian.PutUint16(ring[badSlot*cfg.FrameSize+tpOffMac:], uint16(cfg.FrameSize))
	n = rr.readBatch(dst)
	if n != 5 {
		t.Fatalf("wrap-around decoded %d frames, want 5", n)
	}
	if rr.malformed != 1 {
		t.Fatalf("malformed = %d, want 1", rr.malformed)
	}
	// Timestamps regressed against the first batch (sec 101 < base of
	// sec 100? no — sec advanced; nsec restarted). The clamp keeps TS
	// monotonic regardless.
	for i := 1; i < n; i++ {
		if dst[i].TS < dst[i-1].TS {
			t.Fatalf("TS ran backwards: %v after %v", dst[i].TS, dst[i-1].TS)
		}
	}
	if n := rr.readBatch(dst); n != 0 {
		t.Fatalf("drained ring produced %d frames", n)
	}
	for i := 0; i < cfg.FrameCount; i++ {
		if atomic.LoadUint32(rr.statusPtr(i)) != tpStatusKernel {
			t.Fatalf("slot %d not returned to the kernel after wrap", i)
		}
	}
}

// TestRingReaderBatchSmallerThanReady: a batch smaller than the ready
// frames drains incrementally without losing or reordering anything.
func TestRingReaderBatchSmallerThanReady(t *testing.T) {
	cfg := RingConfig{FrameSize: 512, FrameCount: 8, BlockSize: 4096}
	ring := make([]byte, cfg.FrameSize*cfg.FrameCount)
	clientNet := packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)
	rr := newRingReader(ring, cfg, clientNet)
	for i := 0; i < 8; i++ {
		pkt := testPkt(i, nil)
		postFrame(ring, cfg, i, frameBytes(t, pkt), pkt.Len+14, 7, uint32(i))
	}
	dst := make([]packet.Packet, 3)
	var ports []uint16
	for {
		n := rr.readBatch(dst)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			ports = append(ports, dst[i].Pair.SrcPort)
		}
	}
	if len(ports) != 8 {
		t.Fatalf("drained %d frames, want 8", len(ports))
	}
	for i, p := range ports {
		if p != 40000+uint16(i) {
			t.Fatalf("frame %d out of order: port %d", i, p)
		}
	}
}
