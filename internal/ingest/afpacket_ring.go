package ingest

import (
	"encoding/binary"
	"sync/atomic"
	"time"
	"unsafe"

	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

// AF_PACKET TPACKET_V2 ring ABI. The kernel hands frames to userspace
// through a shared memory ring of fixed-size slots, each starting with
// a tpacket2_hdr; ownership moves kernel→user by setting TP_STATUS_USER
// in tp_status and back by storing TP_STATUS_KERNEL. These values are
// the kernel ABI (linux/if_packet.h) and are defined here, untagged, so
// the ring walker compiles and unit-tests on every platform; only the
// socket plumbing in afpacket_linux.go needs the real kernel.
const (
	tpStatusKernel = 0
	tpStatusUser   = 1

	// tpacket2_hdr field offsets within a frame slot.
	tpOffStatus  = 0  // __u32 tp_status
	tpOffLen     = 4  // __u32 tp_len (original wire length)
	tpOffSnaplen = 8  // __u32 tp_snaplen (captured length)
	tpOffMac     = 12 // __u16 tp_mac (offset of the frame bytes)
	tpOffNet     = 14 // __u16 tp_net
	tpOffSec     = 16 // __u32 tp_sec
	tpOffNsec    = 20 // __u32 tp_nsec
)

// RingConfig sizes an AF_PACKET RX ring. FrameSize must be large enough
// for the tpacket2_hdr plus the snap length and is a multiple of 16 per
// the kernel's TPACKET_ALIGN; BlockSize must be a multiple of FrameSize
// (and, for the live socket, of the page size).
type RingConfig struct {
	FrameSize  int
	FrameCount int
	BlockSize  int
}

// DefaultRingConfig returns a ring of 4096 2 KiB frames (8 MiB), enough
// for full 1500-byte frames with headroom for the slot header.
func DefaultRingConfig() RingConfig {
	return RingConfig{FrameSize: 2048, FrameCount: 4096, BlockSize: 1 << 22}
}

// ringReader walks a TPACKET_V2 ring mapping. It is pure ring logic —
// the mapping may be a live kernel ring (afpacket_linux.go) or a
// synthesized one (tests). Frames are consumed zero-copy: a batch's
// payloads alias the ring slots, so slots are released back to the
// kernel only on the *next* ReadBatch, keeping the previous batch valid
// exactly as the Ingest contract requires.
type ringReader struct {
	ring      []byte
	frameSize int
	frameNr   int
	idx       int //p2p:confined afring // next slot to inspect
	clientNet packet.Network

	// Slots handed out by the previous readBatch, to release first.
	heldFirst int //p2p:confined afring
	heldCount int //p2p:confined afring

	baseSec  int64         //p2p:confined afring
	baseNsec int64         //p2p:confined afring
	baseSet  bool          //p2p:confined afring
	lastTS   time.Duration //p2p:confined afring

	malformed        int64 //p2p:confined afring
	clockRegressions int64 //p2p:confined afring
}

func newRingReader(ring []byte, cfg RingConfig, clientNet packet.Network) *ringReader {
	return &ringReader{
		ring:      ring,
		frameSize: cfg.FrameSize,
		frameNr:   cfg.FrameCount,
		clientNet: clientNet,
	}
}

// statusPtr returns the slot's tp_status word for atomic access. The
// kernel writes the status with a release store after filling the slot;
// the acquire load below makes the slot contents visible before we
// parse them.
//
//p2p:hotpath
func (r *ringReader) statusPtr(slot int) *uint32 {
	return (*uint32)(unsafe.Pointer(&r.ring[slot*r.frameSize+tpOffStatus]))
}

// release returns the previous batch's slots to the kernel.
//
//p2p:hotpath
//p2p:confined afring
func (r *ringReader) release() {
	for i := 0; i < r.heldCount; i++ {
		slot := (r.heldFirst + i) % r.frameNr
		atomic.StoreUint32(r.statusPtr(slot), tpStatusKernel)
	}
	r.heldCount = 0
}

// readBatch drains ready ring slots into dst and returns how many
// packets it decoded. It returns 0 when no slot is ready — the caller
// decides whether to wait (live socket) or stop (drained test ring).
// It never blocks and never reads past the slots the kernel has
// released to userspace.
//
//p2p:hotpath
//p2p:confined afring
func (r *ringReader) readBatch(dst []packet.Packet) int {
	r.release()
	first := r.idx
	taken := 0
	n := 0
	for n < len(dst) && taken < r.frameNr {
		if atomic.LoadUint32(r.statusPtr(r.idx))&tpStatusUser == 0 {
			break
		}
		slot := r.ring[r.idx*r.frameSize : (r.idx+1)*r.frameSize]
		r.idx = (r.idx + 1) % r.frameNr
		taken++

		if r.decodeSlot(slot, &dst[n]) {
			n++
		} else {
			r.malformed++
		}
	}
	// Hold every consumed slot (decoded or not) until the next call.
	r.heldFirst = first
	r.heldCount = taken
	return n
}

// decodeSlot parses one ring slot in place. Payloads alias the slot.
//
//p2p:hotpath
//p2p:confined afring
func (r *ringReader) decodeSlot(slot []byte, pkt *packet.Packet) bool {
	mac := int(binary.NativeEndian.Uint16(slot[tpOffMac:]))
	snap := int(binary.NativeEndian.Uint32(slot[tpOffSnaplen:]))
	wire := int(binary.NativeEndian.Uint32(slot[tpOffLen:]))
	if mac < tpOffNsec+4 || snap < 0 || mac+snap > len(slot) {
		return false
	}
	frame := slot[mac : mac+snap : mac+snap]
	if pcap.DecodeFrame(frame, wire, false, pkt) != nil {
		return false
	}

	sec := int64(binary.NativeEndian.Uint32(slot[tpOffSec:]))
	nsec := int64(binary.NativeEndian.Uint32(slot[tpOffNsec:]))
	if !r.baseSet {
		r.baseSec = sec
		r.baseNsec = nsec
		r.baseSet = true
	}
	rel := time.Duration(sec-r.baseSec)*time.Second + time.Duration(nsec-r.baseNsec)
	if rel < r.lastTS {
		r.clockRegressions++
		rel = r.lastTS
	} else {
		r.lastTS = rel
	}
	pkt.TS = rel
	pkt.Dir = packet.Classify(pkt.Pair, r.clientNet)
	return true
}
