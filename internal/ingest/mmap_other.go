//go:build !linux

package ingest

import (
	"io"
	"os"
)

// mapFile reads the whole file into memory on platforms without the
// mmap fast path. The walker behaves identically either way — it only
// sees a []byte — so this fallback trades the page cache sharing of a
// real mapping for portability, nothing else.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size < 0 || size != int64(int(size)) {
		return nil, nil, os.ErrInvalid
	}
	data := make([]byte, int(size))
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
