package ingest_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/ingest"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
	"p2pbound/internal/trace"
)

var testNet = packet.CIDR(packet.AddrFrom4(140, 112, 0, 0), 16)

// tracePcap renders a generated trace to pcap bytes.
func tracePcap(t testing.TB, duration time.Duration, scale float64, seed uint64) ([]byte, []packet.Packet) {
	t.Helper()
	tr, err := trace.Generate(trace.DefaultConfig(duration, scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	base := time.Date(2006, 11, 15, 9, 0, 0, 0, time.UTC)
	if err := pcap.WriteAll(&buf, tr.Packets, 0, base); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tr.Packets
}

// drain reads src to exhaustion, cloning every packet and payload.
func drain(t testing.TB, src ingest.Ingest) []packet.Packet {
	t.Helper()
	b := ingest.NewBatch(0)
	var out []packet.Packet
	for {
		n, err := src.ReadBatch(b)
		for i := range b.Pkts[:n] {
			cp := b.Pkts[i]
			cp.Payload = append([]byte(nil), cp.Payload...)
			if len(cp.Payload) == 0 {
				cp.Payload = nil
			}
			out = append(out, cp)
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("ReadBatch: %v", err)
			}
			return out
		}
	}
}

func pktEqual(a, b *packet.Packet) bool {
	return a.TS == b.TS && a.Pair == b.Pair && a.Dir == b.Dir &&
		a.Len == b.Len && a.Flags == b.Flags && bytes.Equal(a.Payload, b.Payload)
}

// TestMMapMatchesReader pins the zero-copy walker to the streaming
// reader: same packets, same order, same timestamps, byte-identical
// payloads — and therefore identical filter verdicts.
func TestMMapMatchesReader(t *testing.T) {
	data, _ := tracePcap(t, 10*time.Second, 0.05, 7)

	r, err := pcap.NewReader(bytes.NewReader(data), testNet)
	if err != nil {
		t.Fatal(err)
	}
	r.VerifyChecksums = true
	want := drain(t, ingest.NewReaderSource(r))

	ms, err := ingest.NewMemSource(data, testNet, true)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, ms)

	if len(got) != len(want) {
		t.Fatalf("mmap walker decoded %d packets, reader %d", len(got), len(want))
	}
	for i := range want {
		if !pktEqual(&got[i], &want[i]) {
			t.Fatalf("packet %d diverged:\nmmap   %+v\nreader %+v", i, got[i], want[i])
		}
	}
	if ms.Malformed() != 0 {
		t.Fatalf("clean trace counted %d malformed frames", ms.Malformed())
	}
}

// newFilter builds a deterministic bitmap filter for verdict parity.
func newFilter(t *testing.T) *core.Filter {
	t.Helper()
	f, err := core.New(core.Config{K: 4, NBits: 14, M: 3, DeltaT: time.Second, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// verdictsOf replays packets through a fresh filter with P_d = 1.
func verdictsOf(t *testing.T, pkts []packet.Packet) []core.Verdict {
	t.Helper()
	f := newFilter(t)
	out := make([]core.Verdict, len(pkts))
	for i := range pkts {
		f.Advance(pkts[i].TS)
		out[i] = f.Process(&pkts[i], 1)
	}
	return out
}

// TestMMapVerdictParity replays the same trace through both sources and
// two identically-seeded filters: the verdict streams must be
// identical.
func TestMMapVerdictParity(t *testing.T) {
	data, _ := tracePcap(t, 8*time.Second, 0.05, 11)

	r, err := pcap.NewReader(bytes.NewReader(data), testNet)
	if err != nil {
		t.Fatal(err)
	}
	r.VerifyChecksums = true
	fromReader := verdictsOf(t, drain(t, ingest.NewReaderSource(r)))

	ms, err := ingest.NewMemSource(data, testNet, true)
	if err != nil {
		t.Fatal(err)
	}
	fromMMap := verdictsOf(t, drain(t, ms))

	if len(fromReader) != len(fromMMap) {
		t.Fatalf("verdict counts differ: reader %d, mmap %d", len(fromReader), len(fromMMap))
	}
	for i := range fromReader {
		if fromReader[i] != fromMMap[i] {
			t.Fatalf("verdict %d diverged: reader %v, mmap %v", i, fromReader[i], fromMMap[i])
		}
	}
}

// TestSliceSourceRoundTrip checks the in-memory adapter preserves the
// slice exactly across arbitrary batch sizes.
func TestSliceSourceRoundTrip(t *testing.T) {
	_, pkts := tracePcap(t, 3*time.Second, 0.05, 13)
	for _, size := range []int{1, 7, 64, 1000000} {
		src := ingest.NewSliceSource(pkts)
		b := ingest.NewBatch(size)
		var got []packet.Packet
		for {
			n, err := src.ReadBatch(b)
			got = append(got, b.Pkts[:n]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(pkts) {
			t.Fatalf("batch size %d: got %d packets, want %d", size, len(got), len(pkts))
		}
		for i := range pkts {
			if !pktEqual(&got[i], &pkts[i]) {
				t.Fatalf("batch size %d: packet %d diverged", size, i)
			}
		}
	}
}

// TestMMapTruncatedFile covers every way a mapping can end mid-record:
// inside the record header, inside the frame, and cleanly. The walker
// must never read past the mapping and must surface broken framing as
// an error after delivering the packets before it.
func TestMMapTruncatedFile(t *testing.T) {
	data, pkts := tracePcap(t, 2*time.Second, 0.05, 17)
	if len(pkts) < 10 {
		t.Fatalf("trace too small: %d packets", len(pkts))
	}
	for cut := 1; cut < 200; cut += 13 {
		trunc := data[:len(data)-cut]
		ms, err := ingest.NewMemSource(trunc, testNet, true)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		b := ingest.NewBatch(64)
		var last error
		for {
			n, err := ms.ReadBatch(b)
			got += n
			if err != nil {
				last = err
				break
			}
		}
		if got >= len(pkts) || got == 0 {
			t.Fatalf("cut %d: decoded %d of %d packets", cut, got, len(pkts))
		}
		if errors.Is(last, io.EOF) {
			// The cut landed exactly on a record boundary: a cleanly
			// shorter file, not torn framing.
			continue
		}
		if !errors.Is(last, ingest.ErrTruncatedFile) {
			t.Fatalf("cut %d: got %v, want ErrTruncatedFile", cut, last)
		}
		// The error is sticky.
		if _, err := ms.ReadBatch(b); !errors.Is(err, ingest.ErrTruncatedFile) {
			t.Fatalf("cut %d: error not sticky: %v", cut, err)
		}
	}
}

// TestMMapGarbageHeaders corrupts record headers and frame bytes; the
// walker must count, not panic, and must stop at broken framing.
func TestMMapGarbageHeaders(t *testing.T) {
	data, pkts := tracePcap(t, 2*time.Second, 0.05, 19)

	t.Run("implausible-length", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		// First record's inclLen field (global header is 24 bytes,
		// record timestamps are 8).
		bad[24+8] = 0xff
		bad[24+9] = 0xff
		bad[24+10] = 0xff
		bad[24+11] = 0x7f
		ms, err := ingest.NewMemSource(bad, testNet, true)
		if err != nil {
			t.Fatal(err)
		}
		n, err := ms.ReadBatch(ingest.NewBatch(8))
		if n != 0 || !errors.Is(err, ingest.ErrBadRecordLength) {
			t.Fatalf("got n=%d err=%v, want ErrBadRecordLength", n, err)
		}
	})

	t.Run("corrupt-frame-content", func(t *testing.T) {
		// Flip the EtherType of the first frame: the record framing is
		// intact, so the walker skips it and decodes everything else.
		bad := append([]byte(nil), data...)
		bad[24+16+12] = 0xde
		bad[24+16+13] = 0xad
		ms, err := ingest.NewMemSource(bad, testNet, true)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, ms)
		if len(got) != len(pkts)-1 {
			t.Fatalf("decoded %d packets, want %d", len(got), len(pkts)-1)
		}
		if ms.Malformed() != 1 {
			t.Fatalf("Malformed() = %d, want 1", ms.Malformed())
		}
	})

	t.Run("corrupt-checksum", func(t *testing.T) {
		// Flip a payload byte of the first frame: under verification
		// both the walker and the reader skip it, and both counters
		// agree.
		bad := append([]byte(nil), data...)
		inclLen := int(uint32(bad[24+8]) | uint32(bad[24+9])<<8 | uint32(bad[24+10])<<16 | uint32(bad[24+11])<<24)
		bad[24+16+inclLen-1] ^= 0xff
		ms, err := ingest.NewMemSource(bad, testNet, true)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, ms)

		r, err := pcap.NewReader(bytes.NewReader(bad), testNet)
		if err != nil {
			t.Fatal(err)
		}
		r.VerifyChecksums = true
		rs := ingest.NewReaderSource(r)
		want := drain(t, rs)

		if len(got) != len(want) {
			t.Fatalf("mmap decoded %d, reader %d", len(got), len(want))
		}
		if ms.Malformed() != rs.Malformed() {
			t.Fatalf("malformed counts differ: mmap %d, reader %d", ms.Malformed(), rs.Malformed())
		}
		if ms.Malformed() != 1 {
			t.Fatalf("Malformed() = %d, want 1", ms.Malformed())
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[0] = 0x00
		if _, err := ingest.NewMemSource(bad, testNet, true); err == nil {
			t.Fatal("bad magic accepted")
		}
	})

	t.Run("short-header", func(t *testing.T) {
		if _, err := ingest.NewMemSource(data[:17], testNet, true); err == nil {
			t.Fatal("truncated global header accepted")
		}
	})
}

// TestMMapReadBatchAllocFree is the alloc guard for the tentpole claim:
// steady-state batch decoding from a mapping allocates nothing — no
// packet, no frame copy, no payload clone.
func TestMMapReadBatchAllocFree(t *testing.T) {
	data, _ := tracePcap(t, 20*time.Second, 0.1, 23)
	ms, err := ingest.NewMemSource(data, testNet, true)
	if err != nil {
		t.Fatal(err)
	}
	b := ingest.NewBatch(0)
	if n, err := ms.ReadBatch(b); n == 0 || err != nil {
		t.Fatalf("warm-up read: n=%d err=%v", n, err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ms.ReadBatch(b); err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("mmap ReadBatch allocates %.1f times per batch, want 0", allocs)
	}
}

// TestReaderSourceAllocFreeSteadyState pins the ReadPacketInto
// satellite: once every batch slot's payload capacity has grown to the
// trace's largest packet, streaming ingestion allocates nothing.
func TestReaderSourceAllocFreeSteadyState(t *testing.T) {
	// Uniform payload sizes so slot capacities converge after one pass.
	pkts := make([]packet.Packet, 4096)
	payload := bytes.Repeat([]byte{0xab}, 64)
	for i := range pkts {
		dir := packet.Outbound
		src := packet.AddrFrom4(140, 112, 1, byte(i))
		dst := packet.AddrFrom4(9, 9, byte(i>>8), byte(i))
		if i%2 == 1 {
			dir = packet.Inbound
			src, dst = dst, src
		}
		pkts[i] = packet.Packet{
			TS: time.Duration(i) * time.Millisecond,
			Pair: packet.SocketPair{
				Proto:   packet.TCP,
				SrcAddr: src, SrcPort: 1000 + uint16(i%100),
				DstAddr: dst, DstPort: 6881,
			},
			Dir: dir, Len: 40 + len(payload), Flags: packet.ACK, Payload: payload,
		}
	}
	var buf bytes.Buffer
	if err := pcap.WriteAll(&buf, pkts, 0, time.Unix(1_163_580_000, 0)); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()), testNet)
	if err != nil {
		t.Fatal(err)
	}
	rs := ingest.NewReaderSource(r)
	b := ingest.NewBatch(256)
	for i := 0; i < 2; i++ { // warm the slot payload capacities
		if n, err := rs.ReadBatch(b); n == 0 || err != nil {
			t.Fatalf("warm-up read %d: n=%d err=%v", i, n, err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := rs.ReadBatch(b); err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ReadBatch allocates %.1f times per batch, want 0", allocs)
	}
}

// TestOpenMMapFile exercises the real file path (mmap on linux, read
// fallback elsewhere) end to end.
func TestOpenMMapFile(t *testing.T) {
	data, pkts := tracePcap(t, 3*time.Second, 0.05, 29)
	path := t.TempDir() + "/trace.pcap"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := ingest.OpenMMap(path, testNet, true)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, ms)
	if len(got) != len(pkts) {
		t.Fatalf("decoded %d packets, want %d", len(got), len(pkts))
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent and the source stays terminal.
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ingest.OpenMMap(path+".missing", testNet, true); err == nil {
		t.Fatal("missing file accepted")
	}
}
