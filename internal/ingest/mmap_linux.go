//go:build linux

package ingest

import (
	"os"
	"syscall"
)

// mapFile memory-maps the whole file read-only. The returned closer
// unmaps it; after that every slice aliasing the mapping is invalid.
// Zero-length files map to an empty slice with a no-op closer (mmap
// rejects length 0).
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size < 0 || size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
