// Package ingest is the batch-oriented ingestion tier: it moves decoded
// packets from a capture source (pcap file, pcap stream, AF_PACKET ring)
// into caller-owned batches sized for core.Filter.HashBatch /
// ProcessBatch, with zero per-packet allocations in steady state.
//
// Ownership contract: a source decodes into the batch the caller passes
// and may alias packet payloads into its own buffers (the mmap'ed file,
// the kernel ring). Everything a ReadBatch call returns — packets and
// payload bytes — is valid only until the next ReadBatch on the same
// source. Callers that need packets to outlive the batch must copy them
// (and clone payloads) before reading again.
package ingest

import (
	"errors"
	"io"

	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

// DefaultBatchSize is the packet capacity of batches allocated by
// NewBatch when the caller does not choose one. It is a multiple of
// core.BatchChunk so batched filters run full two-pass chunks.
const DefaultBatchSize = 256

// Batch is a reusable block of decoded packets. A source fills
// Pkts[:n] in place; the slice header itself is never reallocated by
// conforming sources, so one batch serves an entire replay without
// allocating.
type Batch struct {
	Pkts []packet.Packet
}

// NewBatch allocates a batch holding up to n packets (DefaultBatchSize
// when n <= 0).
func NewBatch(n int) *Batch {
	if n <= 0 {
		n = DefaultBatchSize
	}
	return &Batch{Pkts: make([]packet.Packet, n)}
}

// Ingest is a batch packet source. ReadBatch decodes up to len(b.Pkts)
// packets into b.Pkts[:n] and returns n. It returns io.EOF — possibly
// together with a final n > 0 — when the source is exhausted, and may
// return n == 0 with a nil error when no packets are ready yet (live
// sources). Malformed frames are counted by the source and skipped,
// never surfaced as errors.
type Ingest interface {
	ReadBatch(b *Batch) (int, error)
}

// SliceSource adapts an in-memory packet slice to the Ingest interface.
// Packets are copied into the batch, so the slice is never aliased.
type SliceSource struct {
	pkts []packet.Packet
	off  int
}

// NewSliceSource returns a source draining pkts in order.
func NewSliceSource(pkts []packet.Packet) *SliceSource {
	return &SliceSource{pkts: pkts}
}

// ReadBatch copies the next run of packets into b.
func (s *SliceSource) ReadBatch(b *Batch) (int, error) {
	n := copy(b.Pkts, s.pkts[s.off:])
	s.off += n
	if s.off == len(s.pkts) {
		return n, io.EOF
	}
	return n, nil
}

// ReaderSource adapts the streaming pcap.Reader to the Ingest
// interface. Each batch slot's payload backing array is reused across
// ReadBatch calls (ReadPacketInto), so steady-state reading allocates
// nothing once payload capacities have grown to the trace's largest
// packet. Frames pcap.Reader rejects — malformed headers, checksum
// mismatches under verification — are counted and skipped, matching the
// mmap walker; only framing-level failures (truncated record, I/O
// error) end the stream.
type ReaderSource struct {
	r         *pcap.Reader
	malformed int64
}

// NewReaderSource wraps r. Configure r.VerifyChecksums before the first
// ReadBatch.
func NewReaderSource(r *pcap.Reader) *ReaderSource {
	return &ReaderSource{r: r}
}

// ReadBatch fills b from the underlying reader. On a live stream (a
// tcpdump FIFO) it returns a partial batch as soon as the next record
// is not already buffered, rather than holding decoded packets hostage
// to a blocking read — the stream's consumer stays responsive at any
// traffic rate.
func (s *ReaderSource) ReadBatch(b *Batch) (int, error) {
	n := 0
	for n < len(b.Pkts) {
		if n > 0 {
			if buf := s.r.Buffered(); buf >= 0 && buf < 16 {
				return n, nil
			}
		}
		err := s.r.ReadPacketInto(&b.Pkts[n])
		switch {
		case err == nil:
			n++
		case errors.Is(err, io.EOF):
			return n, io.EOF
		case pcap.IsFrameError(err):
			s.malformed++
		default:
			return n, err
		}
	}
	return n, nil
}

// Malformed reports how many frames were skipped as undecodable or
// corrupt.
func (s *ReaderSource) Malformed() int64 { return s.malformed }

// ClockRegressions proxies the underlying reader's count of
// backwards-running capture timestamps.
func (s *ReaderSource) ClockRegressions() int64 { return s.r.ClockRegressions() }
