package naive

import (
	"testing"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/packet"
)

func pairN(i uint32) packet.SocketPair {
	return packet.SocketPair{
		Proto:   packet.TCP,
		SrcAddr: packet.AddrFrom4(140, 112, byte(i>>8), byte(i)),
		SrcPort: uint16(20000 + i%20000),
		DstAddr: packet.AddrFrom4(7, byte(i>>16), byte(i>>8), byte(i)),
		DstPort: uint16(1 + i%60000),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, false, 0); err == nil {
		t.Fatal("zero timeout accepted")
	}
	if _, err := New(-time.Second, false, 0); err == nil {
		t.Fatal("negative timeout accepted")
	}
}

func TestExactTimerSemantics(t *testing.T) {
	f, err := New(20*time.Second, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	pair := pairN(1)
	f.Process(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound}, 1)

	// Exactly at T: still admitted (timer reaches zero at T).
	if !f.Contains(pair.Inverse(), 20*time.Second) {
		t.Fatal("entry expired before T")
	}
	// Just past T: expired.
	if f.Contains(pair.Inverse(), 20*time.Second+time.Nanosecond) {
		t.Fatal("entry survives past T")
	}
}

func TestOutboundResetsTimer(t *testing.T) {
	f, err := New(10*time.Second, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	pair := pairN(2)
	f.Process(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound}, 1)
	f.Process(&packet.Packet{TS: 8 * time.Second, Pair: pair, Dir: packet.Outbound}, 1)
	if !f.Contains(pair.Inverse(), 17*time.Second) {
		t.Fatal("timer not reset by second outbound packet")
	}
}

func TestInboundVerdicts(t *testing.T) {
	f, err := New(10*time.Second, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	pair := pairN(3)
	f.Process(&packet.Packet{TS: 0, Pair: pair, Dir: packet.Outbound}, 1)
	in := &packet.Packet{TS: time.Second, Pair: pair.Inverse(), Dir: packet.Inbound}
	if v := f.Process(in, 1); v != core.Pass {
		t.Fatalf("matched inbound = %v", v)
	}
	stranger := &packet.Packet{TS: time.Second, Pair: pairN(4), Dir: packet.Inbound}
	if v := f.Process(stranger, 1); v != core.Drop {
		t.Fatalf("unmatched inbound = %v", v)
	}
	s := f.Stats()
	if s.InboundHits != 1 || s.InboundMisses != 1 || s.Dropped != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestSweepBoundsTable(t *testing.T) {
	f, err := New(5*time.Second, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		f.Process(&packet.Packet{TS: 0, Pair: pairN(i), Dir: packet.Outbound}, 1)
	}
	if f.Len() != 100 {
		t.Fatalf("len = %d", f.Len())
	}
	f.Advance(6 * time.Second)
	if f.Len() != 0 {
		t.Fatalf("len after sweep = %d", f.Len())
	}
}

func TestHolePunchMode(t *testing.T) {
	f, err := New(10*time.Second, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := packet.SocketPair{
		Proto:   packet.UDP,
		SrcAddr: packet.AddrFrom4(140, 112, 0, 1), SrcPort: 4000,
		DstAddr: packet.AddrFrom4(5, 5, 5, 5), DstPort: 9000,
	}
	f.Process(&packet.Packet{TS: 0, Pair: out, Dir: packet.Outbound}, 1)
	shifted := packet.SocketPair{
		Proto:   packet.UDP,
		SrcAddr: out.DstAddr, SrcPort: 9777, // different remote port
		DstAddr: out.SrcAddr, DstPort: out.SrcPort,
	}
	if !f.Contains(shifted, time.Second) {
		t.Fatal("hole-punch mode must admit shifted remote ports")
	}
}

func TestPdZeroPassesEverything(t *testing.T) {
	f, err := New(time.Second, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 100; i++ {
		in := &packet.Packet{TS: 0, Pair: pairN(i), Dir: packet.Inbound}
		if f.Process(in, 0) == core.Drop {
			t.Fatal("dropped with P_d = 0")
		}
	}
}
