// Package naive implements the exact solution sketched at the start of
// Section 4.2, before the paper replaces it with the bitmap filter: every
// outbound socket pair is stored with a timer initialized to T and reset on
// every outbound packet; inbound packets pass if the inverse socket pair is
// still live, and otherwise are dropped with probability P_d.
//
// Its storage and per-packet cost grow with the number of concurrent
// connections — the very problem the bitmap filter removes — but its
// admission decisions are exact, which makes it the semantic reference for
// the differential tests and the X2 ablation.
package naive

import (
	"fmt"
	"math/rand/v2"
	"time"

	"p2pbound/internal/core"
	"p2pbound/internal/packet"
)

// Filter is the exact per-socket-pair timer table.
type Filter struct {
	timeout   time.Duration
	holePunch bool
	entries   map[string]time.Duration // key -> expiry time
	rng       *rand.Rand
	keyBuf    []byte
	now       time.Duration
	lastSweep time.Duration
	stats     Stats
}

// Stats counts filter activity since construction.
type Stats struct {
	OutboundPackets int64
	InboundPackets  int64
	InboundHits     int64
	InboundMisses   int64
	Dropped         int64
}

// New builds an exact timer-table filter with expiry timer T. In the
// bitmap-filter correspondence, T plays the role of T_e = k·Δt.
func New(timeout time.Duration, holePunch bool, seed uint64) (*Filter, error) {
	if timeout <= 0 {
		return nil, fmt.Errorf("naive: timeout must be positive, got %v", timeout)
	}
	return &Filter{
		timeout:   timeout,
		holePunch: holePunch,
		entries:   make(map[string]time.Duration, 1024),
		rng:       rand.New(rand.NewPCG(seed, seed^0xda942042e4dd58b5)),
	}, nil
}

// Len returns the number of live socket-pair entries (including entries
// that have expired but not yet been swept).
func (f *Filter) Len() int { return len(f.entries) }

// Stats returns a snapshot of the activity counters.
func (f *Filter) Stats() Stats { return f.stats }

// Advance moves the filter's clock to simulated time ts and sweeps expired
// entries at most once per timeout period, bounding the table size.
func (f *Filter) Advance(ts time.Duration) {
	f.now = ts
	if ts-f.lastSweep >= f.timeout {
		for k, expiry := range f.entries {
			if ts > expiry {
				delete(f.entries, k)
			}
		}
		f.lastSweep = ts
	}
}

// Process applies the naive algorithm to one packet with drop probability
// pd for stateless inbound packets.
func (f *Filter) Process(pkt *packet.Packet, pd float64) core.Verdict {
	if pkt.Dir == packet.Outbound {
		f.stats.OutboundPackets++
		f.entries[f.key(pkt.Pair, packet.Outbound)] = pkt.TS + f.timeout
		return core.Pass
	}
	f.stats.InboundPackets++
	expiry, ok := f.entries[f.key(pkt.Pair, packet.Inbound)]
	if ok && pkt.TS <= expiry {
		f.stats.InboundHits++
		return core.Pass
	}
	f.stats.InboundMisses++
	if pd > 0 && f.rng.Float64() < pd {
		f.stats.Dropped++
		return core.Drop
	}
	return core.Pass
}

// Contains reports whether an inbound packet with this socket pair at time
// ts would find live state.
func (f *Filter) Contains(inboundPair packet.SocketPair, ts time.Duration) bool {
	expiry, ok := f.entries[f.key(inboundPair, packet.Inbound)]
	return ok && ts <= expiry
}

// key encodes the table key: the outbound tuple for outbound packets, the
// inverse tuple for inbound ones, honouring hole-punch mode exactly as the
// bitmap filter does.
func (f *Filter) key(pair packet.SocketPair, dir packet.Direction) string {
	if dir == packet.Inbound {
		pair = pair.Inverse()
	}
	if f.holePunch {
		f.keyBuf = pair.AppendHolePunchKey(f.keyBuf[:0])
	} else {
		f.keyBuf = pair.AppendKey(f.keyBuf[:0])
	}
	return string(f.keyBuf)
}
