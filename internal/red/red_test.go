package red

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLinearValidation(t *testing.T) {
	tests := []struct {
		low, high float64
		ok        bool
	}{
		{50e6, 100e6, true},
		{0, 100e6, true},
		{-1, 100e6, false},
		{100e6, 100e6, false},
		{100e6, 50e6, false},
	}
	for _, tt := range tests {
		_, err := NewLinear(tt.low, tt.high)
		if (err == nil) != tt.ok {
			t.Errorf("NewLinear(%g, %g) error = %v, want ok=%v", tt.low, tt.high, err, tt.ok)
		}
	}
}

// TestLinearEquation1 pins the three branches of Equation 1.
func TestLinearEquation1(t *testing.T) {
	l, err := NewLinear(50e6, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		b    float64
		want float64
	}{
		{0, 0},
		{50e6, 0},   // b ≤ L
		{75e6, 0.5}, // midpoint of the ramp
		{60e6, 0.2}, // (60−50)/(100−50)
		{100e6, 1},  // b ≥ H
		{500e6, 1},
	}
	for _, tt := range tests {
		if got := l.Pd(tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Pd(%g) = %g, want %g", tt.b, got, tt.want)
		}
	}
	if l.Low() != 50e6 || l.High() != 100e6 {
		t.Fatal("threshold accessors wrong")
	}
}

// TestLinearRange property: P_d is always in [0,1] and non-decreasing in
// the throughput.
func TestLinearRange(t *testing.T) {
	l, err := NewLinear(10, 90)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > b {
			a, b = b, a
		}
		pa, pb := l.Pd(a), l.Pd(b)
		return pa >= 0 && pb <= 1 && pa <= pb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlways(t *testing.T) {
	if Always(1).Pd(123) != 1 || Always(0).Pd(123) != 0 {
		t.Fatal("Always constant wrong")
	}
	if Always(0.3).Pd(0) != 0.3 {
		t.Fatal("Always fractional wrong")
	}
	if Always(-2).Pd(0) != 0 || Always(7).Pd(0) != 1 {
		t.Fatal("Always must clamp to [0,1]")
	}
}

func TestNewEWMAValidation(t *testing.T) {
	if _, err := NewEWMA(50, 100, 0); err == nil {
		t.Fatal("weight 0 accepted")
	}
	if _, err := NewEWMA(50, 100, 1.5); err == nil {
		t.Fatal("weight > 1 accepted")
	}
	if _, err := NewEWMA(100, 50, 0.5); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}

func TestEWMAPrimesOnFirstSample(t *testing.T) {
	e, err := NewEWMA(50, 100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	e.Pd(80)
	if got := e.Average(); got != 80 {
		t.Fatalf("first sample should prime the average, got %g", got)
	}
}

func TestEWMADampsBursts(t *testing.T) {
	e, err := NewEWMA(50, 100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// Steady low traffic...
	for i := 0; i < 20; i++ {
		e.Pd(10)
	}
	// ...then a single burst above H must not yield P_d = 1 immediately:
	// the smoothed average (0.75·10 + 0.25·150 = 45) stays below L.
	if got := e.Pd(150); got != 0 {
		t.Fatalf("one burst moved the smoothed P_d to %g, want 0", got)
	}
	// But a sustained overload must converge to 1.
	var got float64
	for i := 0; i < 100; i++ {
		got = e.Pd(150)
	}
	if got != 1 {
		t.Fatalf("sustained overload: P_d = %g, want 1", got)
	}
}

// TestEWMAConvergesToLinear property: under a constant input the smoothed
// prober converges to the same value as the plain ramp.
func TestEWMAConvergesToLinear(t *testing.T) {
	l, err := NewLinear(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		b := math.Mod(math.Abs(raw), 200)
		e, err := NewEWMA(50, 100, 0.5)
		if err != nil {
			return false
		}
		var got float64
		for i := 0; i < 200; i++ {
			got = e.Pd(b)
		}
		return math.Abs(got-l.Pd(b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestObserved property: wrapping a prober changes nothing about its
// verdicts and reports every (throughput, P_d) pair exactly once.
func TestObserved(t *testing.T) {
	l, err := NewLinear(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	var gotBps, gotPd []float64
	o := Observed{Prober: l, Fn: func(bps, pd float64) {
		gotBps = append(gotBps, bps)
		gotPd = append(gotPd, pd)
	}}
	inputs := []float64{0, 50, 75, 100, 200}
	for _, b := range inputs {
		if got, want := o.Pd(b), l.Pd(b); got != want {
			t.Fatalf("Observed.Pd(%g) = %g, want %g", b, got, want)
		}
	}
	if len(gotBps) != len(inputs) {
		t.Fatalf("callback ran %d times, want %d", len(gotBps), len(inputs))
	}
	for i, b := range inputs {
		if gotBps[i] != b || gotPd[i] != l.Pd(b) {
			t.Fatalf("observation %d = (%g, %g), want (%g, %g)", i, gotBps[i], gotPd[i], b, l.Pd(b))
		}
	}
	// A nil callback is legal and a pure pass-through.
	nilObs := Observed{Prober: l}
	if got := nilObs.Pd(75); got != l.Pd(75) {
		t.Fatalf("nil-callback Pd = %g, want %g", got, l.Pd(75))
	}
}

func TestCombine(t *testing.T) {
	tests := []struct {
		name        string
		tenant, agg float64
		want        float64
	}{
		{"both zero", 0, 0, 0},
		{"agg disabled is exact identity", 0.37, 0, 0.37},
		{"tenant idle is exact aggregate", 0, 0.42, 0.42},
		{"tenant saturated", 1, 0.1, 1},
		{"edge saturated fails closed", 0.1, 1, 1},
		{"negative inputs clamp to the other side", -0.5, 0.3, 0.3},
		{"independent composition", 0.5, 0.5, 0.75},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Combine(tt.tenant, tt.agg); got != tt.want {
				t.Fatalf("Combine(%v, %v) = %v, want %v", tt.tenant, tt.agg, got, tt.want)
			}
		})
	}
}

func TestCombineProperties(t *testing.T) {
	for i := 0; i <= 100; i++ {
		for j := 0; j <= 100; j++ {
			a, b := float64(i)/100, float64(j)/100
			p := Combine(a, b)
			if p < 0 || p > 1 {
				t.Fatalf("Combine(%v, %v) = %v out of [0,1]", a, b, p)
			}
			if p != Combine(b, a) {
				t.Fatalf("Combine not symmetric at (%v, %v)", a, b)
			}
			if p+1e-12 < a || p+1e-12 < b {
				t.Fatalf("Combine(%v, %v) = %v below an input: pressure must only add", a, b, p)
			}
		}
	}
}
