// Package red computes the conditional dropping probability P_d applied to
// inbound packets that miss the bitmap filter.
//
// Equation 1 of the paper defines P_d as a RED-like linear ramp between a
// low threshold L and a high threshold H of measured uplink throughput:
//
//	P_d = 0            if b ≤ L
//	P_d = (b−L)/(H−L)  if L < b < H
//	P_d = 1            if b ≥ H
//
// An EWMA-smoothed variant in the style of the original RED gateway
// (Floyd & Jacobson, the paper's reference [10]) is provided as an
// extension for ablation X1.
package red

import (
	"errors"
	"strconv"
)

// Prober yields the drop probability for the current uplink throughput in
// bits per second. Implementations must return values in [0, 1].
type Prober interface {
	Pd(throughputBps float64) float64
}

// Linear is the Equation 1 ramp. The zero value (L = H = 0) always
// returns 1 for positive throughput; construct with NewLinear.
type Linear struct {
	low  float64
	high float64
}

// NewLinear builds the Equation 1 prober with the given low and high
// uplink-throughput thresholds in bits per second. The paper's Figure 9
// simulation uses L = 50 Mbps and H = 100 Mbps.
func NewLinear(lowBps, highBps float64) (*Linear, error) {
	if lowBps < 0 || highBps <= lowBps {
		return nil, errors.New("red: need 0 <= L < H, got L=" + strconv.FormatFloat(lowBps, 'g', -1, 64) +
			" H=" + strconv.FormatFloat(highBps, 'g', -1, 64))
	}
	return &Linear{low: lowBps, high: highBps}, nil
}

// Pd implements Prober with the Equation 1 piecewise-linear ramp.
//
//p2p:hotpath
func (l *Linear) Pd(throughputBps float64) float64 {
	switch {
	case throughputBps <= l.low:
		return 0
	case throughputBps >= l.high:
		return 1
	default:
		return (throughputBps - l.low) / (l.high - l.low)
	}
}

// Low returns the L threshold in bits per second.
func (l *Linear) Low() float64 { return l.low }

// High returns the H threshold in bits per second.
func (l *Linear) High() float64 { return l.high }

// Always is a constant prober. Always(1) reproduces the Figure 8
// configuration, which drops every inbound packet without state.
type Always float64

// Pd implements Prober with a constant probability.
//
//p2p:hotpath
func (a Always) Pd(float64) float64 {
	switch {
	case a < 0:
		return 0
	case a > 1:
		return 1
	default:
		return float64(a)
	}
}

// EWMA smooths the instantaneous throughput with an exponentially weighted
// moving average before applying the linear ramp, in the manner of the RED
// gateway's average queue estimator. This damps reaction to bursts.
type EWMA struct {
	ramp   Linear
	weight float64
	avg    float64
	primed bool
}

// NewEWMA builds a smoothed prober. weight is the EWMA gain w in
// avg ← (1−w)·avg + w·sample, with 0 < w ≤ 1; the RED paper suggests
// small weights such as 0.002 for per-packet updates, but per-window
// updates (as used here) tolerate larger weights such as 0.25.
func NewEWMA(lowBps, highBps, weight float64) (*EWMA, error) {
	ramp, err := NewLinear(lowBps, highBps)
	if err != nil {
		return nil, err
	}
	if weight <= 0 || weight > 1 {
		return nil, errors.New("red: EWMA weight must be in (0,1], got " + strconv.FormatFloat(weight, 'g', -1, 64))
	}
	return &EWMA{ramp: *ramp, weight: weight}, nil
}

// Pd implements Prober: it folds the sample into the moving average and
// ramps on the average.
//
//p2p:hotpath
func (e *EWMA) Pd(throughputBps float64) float64 {
	if !e.primed {
		e.avg = throughputBps
		e.primed = true
	} else {
		e.avg = (1-e.weight)*e.avg + e.weight*throughputBps
	}
	return e.ramp.Pd(e.avg)
}

// Average returns the current smoothed throughput estimate.
func (e *EWMA) Average() float64 { return e.avg }

// Combine nests a tenant's drop probability under an aggregate uplink
// budget: the combined probability is the chance of losing at least one
// of two independent draws,
//
//	P = 1 − (1−tenant)·(1−agg)
//
// — the hierarchical-RED composition of a multi-tenant edge. A
// subscriber below its own L contributes tenant = 0, so edge-wide
// pressure (agg > 0) still reaches it proportionally; a subscriber at
// its own H drops everything regardless of the aggregate; and a
// saturated edge (agg = 1) fails closed for every tenant at once.
//
// The boundary cases are exact, not merely within floating-point error:
// when either input is ≤ 0 the other is returned unchanged, so a
// disabled or idle aggregate budget leaves the per-tenant ramp
// bit-identical to a bare limiter — the property the one-tenant
// differential equivalence test pins.
//
//p2p:hotpath
func Combine(tenant, agg float64) float64 {
	switch {
	case agg <= 0:
		return tenant
	case tenant <= 0:
		return agg
	case tenant >= 1 || agg >= 1:
		return 1
	default:
		return 1 - (1-tenant)*(1-agg)
	}
}

// Observed wraps a Prober and reports every computed (throughput, P_d)
// pair to a callback — the seam observability layers use to watch the
// RED ramp without re-deriving it. The callback runs synchronously on
// the probing goroutine; it must be fast and must not call back into
// the prober.
type Observed struct {
	Prober
	Fn func(throughputBps, pd float64)
}

// Pd delegates to the wrapped prober and reports the result.
func (o Observed) Pd(throughputBps float64) float64 {
	pd := o.Prober.Pd(throughputBps)
	if o.Fn != nil {
		o.Fn(throughputBps, pd)
	}
	return pd
}
