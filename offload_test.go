package p2pbound

import (
	"net/netip"
	"testing"
	"time"

	"p2pbound/internal/offload"
	"p2pbound/internal/packet"
)

// offPkt is one differential-test packet in both representations: the
// public Packet the limiters decide, and the internal socket pair plus
// direction the fast path probes (in a deployment the kernel stage
// knows direction from the interface, exactly as the test knows it by
// construction).
type offPkt struct {
	pub  Packet
	pair packet.SocketPair
	dir  packet.Direction
}

// offTraffic generates a deterministic client/remote packet mix:
// tracked flows open outbound and then converse both ways (their
// inbound is legitimate), while attack flows are inbound-only (their
// packets are unmatched and, under fail-closed, always dropped). Every
// flow reappears throughout the trace, so rotation-expired marks get
// re-marked and re-probed.
func offTraffic(n int, step time.Duration) []offPkt {
	const flows = 48
	pkts := make([]offPkt, 0, n)
	ts := time.Duration(0)
	for i := 0; len(pkts) < n; i++ {
		flow := i % flows
		u := uint64(flow)*0x9e3779b97f4a7c15 + 1
		client := [4]byte{140, 112, byte(u >> 8), byte(u)}
		remote := [4]byte{88, byte(u >> 16), byte(u >> 24), byte(u >> 32)}
		cPort := uint16(u>>40)%50000 + 1024
		rPort := uint16(u>>48)%50000 + 1024
		out := packet.SocketPair{
			Proto:   packet.TCP,
			SrcAddr: packet.AddrFrom4(client[0], client[1], client[2], client[3]), SrcPort: cPort,
			DstAddr: packet.AddrFrom4(remote[0], remote[1], remote[2], remote[3]), DstPort: rPort,
		}
		mk := func(pair packet.SocketPair, dir packet.Direction) offPkt {
			var src, dst [4]byte
			s, d := uint32(pair.SrcAddr), uint32(pair.DstAddr)
			src = [4]byte{byte(s >> 24), byte(s >> 16), byte(s >> 8), byte(s)}
			dst = [4]byte{byte(d >> 24), byte(d >> 16), byte(d >> 8), byte(d)}
			return offPkt{
				pub: Packet{
					Timestamp: ts,
					Protocol:  Protocol(pair.Proto),
					SrcAddr:   netip.AddrFrom4(src), SrcPort: pair.SrcPort,
					DstAddr: netip.AddrFrom4(dst), DstPort: pair.DstPort,
					Size: 512,
				},
				pair: pair,
				dir:  dir,
			}
		}
		switch {
		case flow%3 == 2:
			// Attack flow: inbound with no outbound counterpart.
			in := packet.SocketPair{
				Proto:   packet.TCP,
				SrcAddr: packet.AddrFrom4(remote[0], remote[1], remote[2], 200), SrcPort: rPort,
				DstAddr: out.SrcAddr, DstPort: cPort,
			}
			pkts = append(pkts, mk(in, packet.Inbound))
		case i%5 == 0:
			pkts = append(pkts, mk(out, packet.Outbound))
		default:
			pkts = append(pkts, mk(out.Inverse(), packet.Inbound))
		}
		ts += step
	}
	return pkts[:n]
}

// runSplit decides pkts through the two-tier split: a FastPath probe
// first; hits pass with no slow-path involvement, misses travel the
// bounded ring to the slow limiter, whose verdict is authoritative.
// The slow limiter republishes the map every publishEvery packets.
func runSplit(t *testing.T, slow *Limiter, om *offload.Map, pkts []offPkt, publishEvery int) ([]Decision, *offload.FastPath) {
	t.Helper()
	fp, err := offload.NewFastPath(om)
	if err != nil {
		t.Fatal(err)
	}
	ring := offload.NewMissRing[Packet](256)
	decisions := make([]Decision, 0, len(pkts))
	escalated := make([]Packet, 0, 8)
	for i := range pkts {
		if fp.Probe(pkts[i].pair, pkts[i].dir) == offload.Hit {
			decisions = append(decisions, Pass)
		} else {
			if !ring.TryPush(pkts[i].pub) {
				t.Fatal("miss ring overflow in a drain-per-packet test")
			}
			escalated = ring.Drain(escalated[:0])
			for _, ep := range escalated {
				decisions = append(decisions, slow.Process(ep))
			}
		}
		if (i+1)%publishEvery == 0 {
			if err := slow.PublishOffload(om); err != nil {
				t.Fatal(err)
			}
		}
	}
	return decisions, fp
}

func offConfig(rotate time.Duration) Config {
	return Config{
		ClientNetwork: "140.112.0.0/16",
		Vectors:       4,
		VectorBits:    14,
		HashFunctions: 3,
		RotateEvery:   rotate,
		Seed:          11,
	}
}

// TestOffloadDifferentialExact: with the map republished after every
// packet and both limiters fail-closed (P_d pinned to 1, so decisions
// are deterministic), the two-tier split's per-packet decisions are
// bit-identical to a monolithic limiter's. This is the strong form of
// the escalation contract: a Hit passes exactly what the monolith
// would pass, an escalation reproduces exactly what the monolith
// would decide, and the split slow path's filter state never diverges
// (a Hit outbound packet's re-mark would have been a no-op).
func TestOffloadDifferentialExact(t *testing.T) {
	cfg := offConfig(time.Hour) // no rotations; staleness is zero by republish-per-packet
	pkts := offTraffic(6000, time.Millisecond)

	mono, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mono.SetFailClosed(true)
	slow, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow.SetFailClosed(true)
	om, err := slow.NewOffloadMap()
	if err != nil {
		t.Fatal(err)
	}

	monoDec := make([]Decision, 0, len(pkts))
	for i := range pkts {
		monoDec = append(monoDec, mono.Process(pkts[i].pub))
	}
	splitDec, fp := runSplit(t, slow, om, pkts, 1)

	if len(splitDec) != len(monoDec) {
		t.Fatalf("decision count %d != %d", len(splitDec), len(monoDec))
	}
	for i := range monoDec {
		if splitDec[i] != monoDec[i] {
			t.Fatalf("packet %d (%v %v): split %v != monolith %v",
				i, pkts[i].dir, pkts[i].pair, splitDec[i], monoDec[i])
		}
	}
	if fp.Hits() == 0 || fp.Escalations() == 0 {
		t.Fatalf("degenerate split: hits=%d escalations=%d", fp.Hits(), fp.Escalations())
	}
	t.Logf("identical decisions over %d packets: %d fast-path hits, %d escalations",
		len(pkts), fp.Hits(), fp.Escalations())
}

// TestOffloadDifferentialZeroFalseNegatives: with a deliberately stale
// map (republished only every 64 packets) and rotations happening
// mid-traffic, the split may pass packets the monolith drops (bounded
// staleness is fail-open by design) but must never drop a packet the
// monolith passes: the fast path itself never drops, and every miss
// escalates to a slow path whose mark state is identical and whose
// rotation clock can only lag — both fail-open directions.
func TestOffloadDifferentialZeroFalseNegatives(t *testing.T) {
	cfg := offConfig(100 * time.Millisecond) // ~30 rotations over the trace
	pkts := offTraffic(12000, 250*time.Microsecond)

	mono, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mono.SetFailClosed(true)
	slow, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow.SetFailClosed(true)
	om, err := slow.NewOffloadMap()
	if err != nil {
		t.Fatal(err)
	}

	monoDec := make([]Decision, 0, len(pkts))
	for i := range pkts {
		monoDec = append(monoDec, mono.Process(pkts[i].pub))
	}
	splitDec, fp := runSplit(t, slow, om, pkts, 64)

	falseNegatives := 0
	monoDrops := 0
	for i := range monoDec {
		if monoDec[i] == Drop {
			monoDrops++
		}
		if splitDec[i] == Drop && monoDec[i] == Pass {
			falseNegatives++
		}
	}
	if falseNegatives != 0 {
		t.Fatalf("%d packets dropped by the split but passed by the monolith", falseNegatives)
	}
	if monoDrops == 0 {
		t.Fatal("degenerate trace: the monolith dropped nothing")
	}
	if ms := mono.Stats(); ms.Rotations == 0 {
		t.Fatal("degenerate trace: no rotations")
	}
	if fp.Hits() == 0 || fp.Escalations() == 0 {
		t.Fatalf("degenerate split: hits=%d escalations=%d", fp.Hits(), fp.Escalations())
	}
	t.Logf("%d packets, %d monolith drops, 0 false negatives (hits=%d escalations=%d, slow rotations=%d)",
		len(pkts), monoDrops, fp.Hits(), fp.Escalations(), slow.Stats().Rotations)
}

// TestTenantOffloadRouting: a TenantManager export routes probes to
// the right tenant section by subscriber prefix, answers Hit only for
// flows that tenant actually tracks, and kills a section when its
// tenant is evicted.
func TestTenantOffloadRouting(t *testing.T) {
	mgr, err := NewTenantManager(TenantManagerConfig{
		Tenant: Config{
			ClientNetwork: "0.0.0.0/0",
			Vectors:       3, VectorBits: 12, HashFunctions: 3,
			RotateEvery: time.Hour,
		},
		PrefixBits: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddTenants([]TenantConfig{
		{ID: "campus", Network: "140.112.0.0/16"},
		{ID: "dorm", Network: "10.99.0.0/16"},
	}); err != nil {
		t.Fatal(err)
	}
	mk := func(src, dst [4]byte, sp, dp uint16) Packet {
		return Packet{
			Protocol: 6,
			SrcAddr:  netip.AddrFrom4(src), SrcPort: sp,
			DstAddr: netip.AddrFrom4(dst), DstPort: dp,
			Size: 256,
		}
	}
	campusOut := mk([4]byte{140, 112, 1, 1}, [4]byte{88, 1, 1, 1}, 2000, 80)
	dormOut := mk([4]byte{10, 99, 2, 2}, [4]byte{88, 2, 2, 2}, 3000, 80)
	mgr.Process(campusOut)
	mgr.Process(dormOut)

	to, err := mgr.NewOffload()
	if err != nil {
		t.Fatal(err)
	}
	if err := to.Publish(); err != nil {
		t.Fatal(err)
	}
	fp, err := offload.NewFastPath(to.Map())
	if err != nil {
		t.Fatal(err)
	}

	campusPair := packet.SocketPair{Proto: packet.TCP,
		SrcAddr: packet.AddrFrom4(140, 112, 1, 1), SrcPort: 2000,
		DstAddr: packet.AddrFrom4(88, 1, 1, 1), DstPort: 80}
	dormPair := packet.SocketPair{Proto: packet.TCP,
		SrcAddr: packet.AddrFrom4(10, 99, 2, 2), SrcPort: 3000,
		DstAddr: packet.AddrFrom4(88, 2, 2, 2), DstPort: 80}

	cSec := fp.SectionFor(campusPair)
	dSec := fp.SectionFor(dormPair)
	if cSec < 0 || dSec < 0 || cSec == dSec {
		t.Fatalf("routing collapsed: campus=%d dorm=%d", cSec, dSec)
	}
	if key, idh := to.Map().SectionKey(cSec); key != 140<<8|112 || idh == 0 {
		t.Fatalf("campus section key %d idhash %#x", key, idh)
	}
	// Each tenant's marked flow hits in its own section and escalates in
	// the other's (independent per-tenant filters).
	if v := fp.ProbeSection(cSec, campusPair, packet.Outbound); v != offload.Hit {
		t.Fatalf("campus flow in campus section: %v", v)
	}
	if v := fp.ProbeSection(dSec, campusPair, packet.Outbound); v != offload.Escalate {
		t.Fatalf("campus flow in dorm section: %v", v)
	}
	if v := fp.ProbeSection(cSec, campusPair.Inverse(), packet.Inbound); v != offload.Hit {
		t.Fatalf("campus reply inbound: %v", v)
	}
	// Unknown prefix routes nowhere.
	stray := packet.SocketPair{Proto: packet.TCP,
		SrcAddr: packet.AddrFrom4(44, 1, 1, 1), SrcPort: 1,
		DstAddr: packet.AddrFrom4(45, 1, 1, 1), DstPort: 2}
	if s := fp.SectionFor(stray); s != -1 {
		t.Fatalf("stray pair routed to section %d", s)
	}

	// Evicting everything idle kills the sections on the next publish.
	mgr.EvictIdle(0)
	if err := to.Publish(); err != nil {
		t.Fatal(err)
	}
	if v := fp.ProbeSection(cSec, campusPair, packet.Outbound); v != offload.Escalate {
		t.Fatalf("evicted tenant's section still answers %v", v)
	}
}

// TestPipelineOffloadMap: a Pipeline with OffloadEvery publishes every
// shard's filter into the shared map; after Close (which forces a
// final per-shard publish) a probe routed by ShardOf order hits for a
// tracked flow.
func TestPipelineOffloadMap(t *testing.T) {
	cfg := offConfig(time.Hour)
	p, err := NewPipeline(cfg, PipelineConfig{Shards: 2, OffloadEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	om := p.OffloadMap()
	if om == nil {
		t.Fatal("OffloadEvery set but OffloadMap is nil")
	}
	if om.Sections() != 2 {
		t.Fatalf("sections=%d, want one per shard", om.Sections())
	}
	pkts := offTraffic(2000, time.Millisecond)
	for i := range pkts {
		p.Submit(pkts[i].pub)
	}
	p.Drain()
	p.Close()

	fp, err := offload.NewFastPath(om)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range pkts {
		if pkts[i].dir != packet.Outbound {
			continue
		}
		sec := int(uint(p.sharded.ShardOf(pkts[i].pub)))
		if fp.ProbeSection(sec, pkts[i].pair, packet.Outbound) == offload.Hit {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no tracked flow hit in the pipeline's offload map")
	}
}
