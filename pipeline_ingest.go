package p2pbound

import (
	"errors"
	"fmt"
	"io"
	"net/netip"

	"p2pbound/internal/ingest"
	"p2pbound/internal/packet"
	"p2pbound/internal/pcap"
)

// SubmitPcapFile replays the pcap capture at path through the pipeline
// using the zero-copy memory-mapped source: frames are decoded in place
// out of the mapping and flow through the shard rings one batch at a
// time, so peak heap is one batch regardless of capture size. It
// returns the number of packets submitted and the source's terminal
// error, nil on a clean end of stream. Undecodable frames are skipped,
// not submitted and not counted; a capture truncated mid-record
// returns an error after the packets read before the tear.
//
// Like SubmitBatch, it must not be called after (or concurrently with)
// Close, and verdicts remain asynchronous — Drain or Close before
// reading the counters.
func (p *Pipeline) SubmitPcapFile(path string) (int64, error) {
	src, err := ingest.OpenMMap(path, p.clientNet, false)
	if err != nil {
		return 0, fmt.Errorf("p2pbound: %w", err)
	}
	defer src.Close()
	return p.submitIngest(src)
}

// SubmitPcapStream replays a pcap stream (stdin, a pipe, a socket)
// through the pipeline in batches, with the same contract as
// SubmitPcapFile. The stream is read to EOF.
func (p *Pipeline) SubmitPcapStream(r io.Reader) (int64, error) {
	pr, err := pcap.NewReader(r, p.clientNet)
	if err != nil {
		return 0, fmt.Errorf("p2pbound: %w", err)
	}
	return p.submitIngest(ingest.NewReaderSource(pr))
}

// submitIngest drains an ingestion source into the pipeline: each batch
// the source decodes is translated to public packets in a reused buffer
// and routed through SubmitBatch, so an arbitrarily large capture flows
// through the shard rings with only one batch of packets live at a
// time. Per-flow timestamp order is preserved because the whole source
// drains on this one producer goroutine.
func (p *Pipeline) submitIngest(src ingest.Ingest) (int64, error) {
	b := ingest.NewBatch(0)
	pub := make([]Packet, 0, len(b.Pkts))
	var total int64
	for {
		n, err := src.ReadBatch(b)
		if n > 0 {
			pub = pub[:0]
			for i := range b.Pkts[:n] {
				pkt := &b.Pkts[i]
				pub = append(pub, Packet{
					Timestamp: pkt.TS,
					Protocol:  Protocol(pkt.Pair.Proto),
					SrcAddr:   addrToNetip(pkt.Pair.SrcAddr), SrcPort: pkt.Pair.SrcPort,
					DstAddr: addrToNetip(pkt.Pair.DstAddr), DstPort: pkt.Pair.DstPort,
					Size: pkt.Len,
				})
			}
			p.SubmitBatch(pub)
			total += int64(n)
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return total, nil
			}
			return total, fmt.Errorf("p2pbound: ingest: %w", err)
		}
	}
}

func addrToNetip(a packet.Addr) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}
