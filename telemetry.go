package p2pbound

import (
	"io"
	"math"
	"net/http"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"p2pbound/internal/metrics"
	"p2pbound/internal/replica"
)

// telemetryStripes is the stripe count of the shared histograms and
// pipeline counters. Stripe indices wrap, so topologies with more shards
// than stripes stay correct — they merely share cache lines.
const telemetryStripes = 16

// Telemetry is the observability root of a limiter topology: one metrics
// registry that every Limiter, ShardedLimiter, and Pipeline built with a
// Config referencing it reports into. Attach it once:
//
//	tel := p2pbound.NewTelemetry()
//	limiter, err := p2pbound.New(p2pbound.Config{..., Telemetry: tel})
//	go http.ListenAndServe("localhost:9090", tel.Handler())
//
// Limiters attach in construction order and label their series with a
// shard index (a standalone limiter is shard 0; NewSharded and
// NewPipeline shards attach in shard order). One Telemetry should back
// one topology — attaching two independent pipelines to the same
// instance interleaves their shard numbering.
//
// The exported series are sampled from the same atomic counters the
// limiter already maintains, so attaching telemetry adds no work to the
// per-packet path beyond two predictable nil checks; scrapes pay the
// collection cost. Recording into the histograms (drop P_d, batch
// latency) is wait-free and allocation-free.
type Telemetry struct {
	reg *metrics.Registry

	// dropPd records the P_d in effect at each dropped packet; its shape
	// shows whether drops happen at the bottom of the RED ramp (uplink
	// barely over the low threshold) or under saturation.
	dropPd *metrics.Histogram
	// batchSeconds records the wall-clock latency of each ProcessBatch
	// call on a telemetry-attached limiter.
	batchSeconds *metrics.Histogram

	mu         sync.Mutex
	shards     int
	pipelines  int
	replicas   int
	tenantMgrs int
}

// NewTelemetry returns an empty telemetry root ready to be referenced
// from Config.
func NewTelemetry() *Telemetry {
	t := &Telemetry{reg: metrics.NewRegistry()}
	t.dropPd = t.reg.Histogram(
		"p2pbound_drop_pd",
		"Drop probability P_d in effect at each dropped inbound packet.",
		[]float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99},
		telemetryStripes,
	)
	t.batchSeconds = t.reg.Histogram(
		"p2pbound_batch_seconds",
		"Wall-clock latency of one ProcessBatch call.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1},
		telemetryStripes,
	)
	return t
}

// Handler returns the HTTP observability surface for this topology:
// /metrics (Prometheus text format), /metrics.json, /debug/vars
// (expvar), and /debug/pprof/. Safe to serve while packets are being
// processed.
func (t *Telemetry) Handler() http.Handler { return t.reg.Handler() }

// WritePrometheus renders every series in the Prometheus text exposition
// format.
func (t *Telemetry) WritePrometheus(w io.Writer) error { return t.reg.WritePrometheus(w) }

// WriteJSON renders every series as JSON.
func (t *Telemetry) WriteJSON(w io.Writer) error { return t.reg.WriteJSON(w) }

// attach registers one limiter's counters and gauges under the next
// shard label. Called from New when Config.Telemetry is set; the scrape
// closures read the limiter's atomic counters and load l.filter through
// its atomic pointer, so they are safe concurrently with processing and
// with RestoreState/AdoptState swaps.
func (t *Telemetry) attach(l *Limiter) {
	t.mu.Lock()
	shard := t.shards
	t.shards++
	t.mu.Unlock()
	l.tel = t
	l.telShard = shard
	lbl := metrics.L("shard", strconv.Itoa(shard))

	stat := func(pick func(Stats) int64) func() float64 {
		return func() float64 { return float64(pick(l.Stats())) }
	}
	t.reg.CounterFunc("p2pbound_packets_total", "Packets processed, by direction.",
		stat(func(s Stats) int64 { return s.OutboundPackets }), metrics.L("dir", "outbound"), lbl)
	t.reg.CounterFunc("p2pbound_packets_total", "Packets processed, by direction.",
		stat(func(s Stats) int64 { return s.InboundPackets }), metrics.L("dir", "inbound"), lbl)
	t.reg.CounterFunc("p2pbound_inbound_total", "Inbound packets by bitmap-filter match result.",
		stat(func(s Stats) int64 { return s.InboundMatched }), metrics.L("result", "matched"), lbl)
	t.reg.CounterFunc("p2pbound_inbound_total", "Inbound packets by bitmap-filter match result.",
		stat(func(s Stats) int64 { return s.InboundUnmatched }), metrics.L("result", "unmatched"), lbl)
	t.reg.CounterFunc("p2pbound_dropped_total", "Unmatched inbound packets dropped by the P_d draw.",
		stat(func(s Stats) int64 { return s.Dropped }), lbl)
	t.reg.CounterFunc("p2pbound_unroutable_total", "Unclassifiable (non-IPv4) packets dropped defensively.",
		stat(func(s Stats) int64 { return s.Unroutable }), lbl)
	t.reg.CounterFunc("p2pbound_time_anomalies_total", "Timestamp regressions beyond the reorder tolerance.",
		stat(func(s Stats) int64 { return s.TimeAnomalies }), lbl)
	t.reg.CounterFunc("p2pbound_rotations_total", "Bit-vector rotations (the filter epoch).",
		stat(func(s Stats) int64 { return s.Rotations }), lbl)
	t.reg.CounterFunc("p2pbound_uplink_bytes_total", "Outbound bytes accounted by the throughput meter.",
		func() float64 { return float64(l.meter.TotalBytes()) }, lbl)
	t.reg.GaugeFunc("p2pbound_pd", "Drop probability currently applied to unmatched inbound packets.",
		func() float64 { return math.Float64frombits(l.pdBits.Load()) }, lbl)
	t.reg.GaugeFunc("p2pbound_uplink_bps", "Measured uplink throughput feeding the RED ramp, bits/s.",
		func() float64 { return math.Float64frombits(l.uplinkBits.Load()) }, lbl)
	// Info-style gauge: the value is always 1, the labels identify the
	// filter's index-derivation scheme and bit layout so dashboards can
	// correlate FPR and latency shifts with a layout rollout.
	t.reg.GaugeFunc("p2pbound_filter_info", "Always 1; labels carry the filter's hash scheme and bit layout.",
		func() float64 { return 1 },
		metrics.L("hash_scheme", l.filter.Load().HashScheme().String()),
		metrics.L("layout", l.filter.Load().Layout().String()), lbl)
}

// attachPipeline registers one pipeline's verdict and shed counters
// under the next pipeline label. Called from NewPipeline when
// Config.Telemetry is set.
func (t *Telemetry) attachPipeline(p *Pipeline) {
	t.mu.Lock()
	idx := t.pipelines
	t.pipelines++
	t.mu.Unlock()
	lbl := metrics.L("pipeline", strconv.Itoa(idx))

	counter := func(c *metrics.Counter) func() float64 {
		return func() float64 { return float64(c.Value()) }
	}
	t.reg.CounterFunc("p2pbound_pipeline_verdicts_total", "Packets decided by the pipeline, by verdict.",
		counter(p.passed), metrics.L("verdict", "pass"), lbl)
	t.reg.CounterFunc("p2pbound_pipeline_verdicts_total", "Packets decided by the pipeline, by verdict.",
		counter(p.dropped), metrics.L("verdict", "drop"), lbl)
	t.reg.CounterFunc("p2pbound_pipeline_shed_total", "Packets shed undecided by the overload policy.",
		counter(p.shedPassed), metrics.L("verdict", "pass"), lbl)
	t.reg.CounterFunc("p2pbound_pipeline_shed_total", "Packets shed undecided by the overload policy.",
		counter(p.shedDropped), metrics.L("verdict", "drop"), lbl)
}

// attachTenantManager registers a TenantManager's control-plane series:
// population and spill accounting per manager, hydration churn and
// arena occupancy per tenant shard, and — when the hierarchical uplink
// budget is enabled — each shard's aggregate P_d and metered rate.
// Called from NewTenantManager when TenantManagerConfig.Telemetry is
// set; every closure reads atomics or takes the manager's control-plane
// mutex, so scrapes are safe concurrently with processing.
func (t *Telemetry) attachTenantManager(m *TenantManager) {
	t.mu.Lock()
	idx := t.tenantMgrs
	t.tenantMgrs++
	t.mu.Unlock()
	lbl := metrics.L("manager", strconv.Itoa(idx))

	t.reg.GaugeFunc("p2pbound_tenants", "Subscriber networks registered with the tenant manager.",
		func() float64 { return float64(m.Stats().Tenants) }, lbl)
	t.reg.CounterFunc("p2pbound_tenant_no_tenant_total", "Packets matching no registered subscriber, dropped defensively.",
		func() float64 { return float64(m.noTenant.Load()) }, lbl)
	t.reg.CounterFunc("p2pbound_tenant_unroutable_total", "Unclassifiable (non-IPv4) packets dropped defensively.",
		func() float64 { return float64(m.unroutable.Load()) }, lbl)
	t.reg.CounterFunc("p2pbound_tenant_hydrate_fallbacks_total", "Rehydrations that could not decode their spill and restarted fresh.",
		func() float64 { return float64(m.hydrateFallbacks.Load()) }, lbl)
	for _, sh := range m.shards {
		sh := sh
		slbl := metrics.L("tshard", strconv.Itoa(sh.idx))
		t.reg.GaugeFunc("p2pbound_tenants_hydrated", "Tenants currently holding live filter vectors.",
			func() float64 { return float64(sh.hydrated.Load()) }, slbl, lbl)
		t.reg.CounterFunc("p2pbound_tenant_hydrations_total", "Tenants given live filter vectors.",
			func() float64 { return float64(sh.hydrations.Load()) }, slbl, lbl)
		t.reg.CounterFunc("p2pbound_tenant_evictions_total", "Tenants spilled to snapshot form.",
			func() float64 { return float64(sh.evictions.Load()) }, slbl, lbl)
		t.reg.GaugeFunc("p2pbound_tenant_spill_bytes", "Bytes currently held in spilled bitmap snapshots.",
			func() float64 { return float64(sh.spillBytes.Load()) }, slbl, lbl)
		t.reg.GaugeFunc("p2pbound_tenant_arena_bytes", "Slab storage backing the shard's bit-vector arena.",
			func() float64 { return float64(sh.arena.FootprintBytes()) }, slbl, lbl)
		if sh.agg != nil {
			agg := sh.agg
			t.reg.GaugeFunc("p2pbound_aggregate_pd", "Aggregate-budget drop probability nested over every tenant's ramp.",
				func() float64 { return math.Float64frombits(agg.pdBits.Load()) }, slbl, lbl)
			t.reg.GaugeFunc("p2pbound_aggregate_uplink_bps", "Shard slice of the edge-wide metered uplink rate, bits/s.",
				func() float64 { return math.Float64frombits(agg.uplinkBits.Load()) }, slbl, lbl)
		}
	}
}

// attachTenant registers one subscriber's packet and drop counters
// under a tenant label. Opt-in via PerTenantTelemetry — five series per
// tenant is dashboard-friendly at hundreds of tenants and cardinality
// abuse at hundreds of thousands.
func (t *Telemetry) attachTenant(tn *tenant) {
	lbl := metrics.L("tenant", tn.id)
	stat := func(pick func(Stats) int64) func() float64 {
		return func() float64 { return float64(pick(tn.lim.Stats())) }
	}
	t.reg.CounterFunc("p2pbound_tenant_packets_total", "Packets decided for this subscriber, by direction.",
		stat(func(s Stats) int64 { return s.OutboundPackets }), metrics.L("dir", "outbound"), lbl)
	t.reg.CounterFunc("p2pbound_tenant_packets_total", "Packets decided for this subscriber, by direction.",
		stat(func(s Stats) int64 { return s.InboundPackets }), metrics.L("dir", "inbound"), lbl)
	t.reg.CounterFunc("p2pbound_tenant_dropped_total", "Unmatched inbound packets dropped for this subscriber.",
		stat(func(s Stats) int64 { return s.Dropped }), lbl)
}

// attachTenantPipeline registers a TenantPipeline's verdict and shed
// counters; it shares the pipeline label space with attachPipeline.
func (t *Telemetry) attachTenantPipeline(p *TenantPipeline) {
	t.mu.Lock()
	idx := t.pipelines
	t.pipelines++
	t.mu.Unlock()
	lbl := metrics.L("pipeline", strconv.Itoa(idx))

	counter := func(c *metrics.Counter) func() float64 {
		return func() float64 { return float64(c.Value()) }
	}
	t.reg.CounterFunc("p2pbound_pipeline_verdicts_total", "Packets decided by the pipeline, by verdict.",
		counter(p.passed), metrics.L("verdict", "pass"), lbl)
	t.reg.CounterFunc("p2pbound_pipeline_verdicts_total", "Packets decided by the pipeline, by verdict.",
		counter(p.dropped), metrics.L("verdict", "drop"), lbl)
	t.reg.CounterFunc("p2pbound_pipeline_shed_total", "Packets shed undecided by the overload policy.",
		counter(p.shedPassed), metrics.L("verdict", "pass"), lbl)
	t.reg.CounterFunc("p2pbound_pipeline_shed_total", "Packets shed undecided by the overload policy.",
		counter(p.shedDropped), metrics.L("verdict", "drop"), lbl)
}

// attachReplicas registers a fleet's replication telemetry, one label
// set per member. Called from NewFleet when Config.Telemetry is set;
// the scrape closures read the replica nodes' atomic metric mirrors,
// so they are safe concurrently with processing and Sync.
func (t *Telemetry) attachReplicas(fl *Fleet) {
	t.mu.Lock()
	base := t.replicas
	t.replicas += len(fl.nodes)
	t.mu.Unlock()
	for i, node := range fl.nodes {
		n := node
		lbl := metrics.L("replica", strconv.Itoa(base+i))
		rm := func(pick func(replica.Metrics) int64) func() float64 {
			return func() float64 { return float64(pick(n.Metrics())) }
		}
		t.reg.CounterFunc("p2pbound_replica_delta_frames_total", "Delta frames broadcast by this member.",
			rm(func(m replica.Metrics) int64 { return m.DeltaFramesSent }), lbl)
		t.reg.CounterFunc("p2pbound_replica_delta_bytes_total", "Delta frame bytes sent by this member.",
			rm(func(m replica.Metrics) int64 { return m.DeltaBytesSent }), lbl)
		t.reg.CounterFunc("p2pbound_replica_digest_frames_total", "Anti-entropy digest frames sent.",
			rm(func(m replica.Metrics) int64 { return m.DigestFramesSent }), lbl)
		t.reg.CounterFunc("p2pbound_replica_digest_mismatches_total", "Digest ranges that disagreed with a peer.",
			rm(func(m replica.Metrics) int64 { return m.DigestMismatchRanges }), lbl)
		t.reg.CounterFunc("p2pbound_replica_repair_rounds_total", "Repair rounds triggered by digest mismatches.",
			rm(func(m replica.Metrics) int64 { return m.RepairRounds }), lbl)
		t.reg.CounterFunc("p2pbound_replica_repair_bytes_total", "Repair frame bytes pushed to peers.",
			rm(func(m replica.Metrics) int64 { return m.RepairBytesSent }), lbl)
		t.reg.CounterFunc("p2pbound_replica_frames_rejected_total", "Inbound frames rejected (corrupt, wrong geometry, malformed).",
			rm(func(m replica.Metrics) int64 { return m.FramesRejected }), lbl)
		t.reg.CounterFunc("p2pbound_replica_stale_sections_total", "Delta sections skipped for stale vector generations.",
			rm(func(m replica.Metrics) int64 { return m.StaleSections }), lbl)
		t.reg.GaugeFunc("p2pbound_replica_sync_lag_epochs", "Rotations this member last trailed the fleet by.",
			rm(func(m replica.Metrics) int64 { return m.SyncLagEpochs }), lbl)
		t.reg.GaugeFunc("p2pbound_replica_ready", "1 once the member's first full digest round matched every live peer.",
			func() float64 {
				if n.Ready() {
					return 1
				}
				return 0
			}, lbl)
	}
}

// DropTrace is one sampled drop decision, reported to Config.TraceFunc
// every Config.TraceEveryN drops: the socket pair the filter rejected,
// the P_d that won the draw, the uplink rate driving that P_d, and the
// rotation epoch locating the decision against the filter's expiry
// horizon.
type DropTrace struct {
	Timestamp time.Duration
	Protocol  Protocol
	SrcAddr   netip.Addr
	SrcPort   uint16
	DstAddr   netip.Addr
	DstPort   uint16
	// Pd is the drop probability applied to the packet.
	Pd float64
	// UplinkMbps is the measured uplink throughput at decision time.
	UplinkMbps float64
	// Epoch is the filter's rotation count at decision time.
	Epoch int64
}
